//! `hacc-rt`: the hermetic runtime under the whole workspace.
//!
//! This simulated machine must build and test with **zero network access
//! and zero crates.io dependencies** — the same constraint CRK-HACC faces
//! on air-gapped HPC systems where vendor toolchains and batch nodes see
//! no package registry. Everything the workspace previously pulled from
//! crates.io is vendored here as a minimal, well-tested replacement:
//!
//! * [`rng`] — a seedable, splittable xoshiro256++ generator behind
//!   `rand`-shaped [`rng::Rng`]/[`rng::SeedableRng`] traits;
//! * [`rand`] — a path-compatibility facade so call sites keep writing
//!   `rand::rngs::StdRng::seed_from_u64(..)` after switching their `use`;
//! * [`par`] — scoped-thread data parallelism with `rayon`-shaped
//!   `par_iter`/`par_chunks_mut`/`par_sort_unstable_by_key` helpers;
//! * [`channel`] — an unbounded mpmc channel with crossbeam's
//!   send/recv/disconnect semantics;
//! * [`sync`] — `Mutex`/`RwLock` with parking_lot's no-poisoning API;
//! * [`bench`] — a tiny Criterion-compatible harness;
//! * [`prop`] — a bounded-shrinking property-test macro covering the
//!   `proptest!` call sites.
//!
//! Adding a primitive: put it in the narrowest module above, mirror the
//! external crate's method names exactly (call sites should only ever
//! change their `use` lines), and add a determinism or semantics test in
//! the same file. See DESIGN.md § "Hermetic build policy".

pub mod bench;
pub mod channel;
pub mod par;
pub mod prop;
pub mod rng;
pub mod sync;

/// Path-compatibility facade mirroring the `rand` crate layout.
///
/// `use hacc_rt::rand::{self, Rng, SeedableRng};` lets existing call
/// sites keep their fully qualified `rand::rngs::StdRng` paths.
pub mod rand {
    pub use crate::rng::{Rng, SeedableRng};

    /// Mirrors `rand::rngs`.
    pub mod rngs {
        pub use crate::rng::StdRng;
    }
}
