//! `Mutex`/`RwLock` with parking_lot's no-poisoning API shape.
//!
//! Thin wrappers over `std::sync`: `lock()`/`read()`/`write()` return
//! guards directly instead of `Result`s. A panic while holding the lock
//! does not poison it — the next locker recovers the inner state, which
//! matches how the I/O and rank layers used parking_lot.
//!
//! Sanitizer instrumentation: every lock embeds a `hacc_san::LockClock`
//! and the guards drive its acquire/release hooks, so critical sections
//! become happens-before edges for the race detector. When no sanitizer
//! session is armed on the current thread the hooks return after one
//! thread-local check and the clock cell never allocates — the
//! zero-cost-when-off contract.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

use hacc_san::LockClock;

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    clock: LockClock,
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the sanitizer clock edge
/// on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
    clock: &'a LockClock,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        self.clock.release();
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Self {
            clock: LockClock::new(),
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        self.clock.acquire();
        MutexGuard {
            inner: g,
            clock: &self.clock,
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let g = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        self.clock.acquire();
        Some(MutexGuard {
            inner: g,
            clock: &self.clock,
        })
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

/// A reader-writer lock whose `read`/`write` never return `Result`s.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    clock: LockClock,
    inner: std::sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
///
/// Readers drive the same acquire/release clock hooks as writers: that
/// over-synchronizes concurrent readers (the detector sees them as
/// ordered), which can hide read-read concurrency but never invents a
/// race — the conservative direction for a gate.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
    clock: &'a LockClock,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.clock.release();
    }
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
    clock: &'a LockClock,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.clock.release();
    }
}

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Self {
            clock: LockClock::new(),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        self.clock.acquire();
        RwLockReadGuard {
            inner: g,
            clock: &self.clock,
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        self.clock.acquire();
        RwLockWriteGuard {
            inner: g,
            clock: &self.clock,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_counter() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(5i32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // No poisoning: the value is still reachable.
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn sanitized_lock_sections_are_ordered() {
        // With a session armed, lock()/drop drive the clock hooks:
        // mutations of a shared region under the lock must not be
        // reported as races.
        let session = hacc_san::SanSession::new(2);
        let reg = hacc_san::region("sync-fixture");
        let m = Arc::new(Mutex::new(0u32));
        let rendezvous = Arc::new(std::sync::Barrier::new(2));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let session = Arc::clone(&session);
                let m = Arc::clone(&m);
                let rendezvous = Arc::clone(&rendezvous);
                s.spawn(move || {
                    let tok = hacc_san::register_thread(&session);
                    rendezvous.wait();
                    for _ in 0..50 {
                        let mut g = m.lock();
                        hacc_san::annotate_write(reg);
                        *g += 1;
                        drop(g);
                    }
                    tok.finish();
                });
            }
        });
        let report = session.finish();
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(*m.lock(), 100);
    }
}
