//! `Mutex`/`RwLock` with parking_lot's no-poisoning API shape.
//!
//! Thin wrappers over `std::sync`: `lock()`/`read()`/`write()` return
//! guards directly instead of `Result`s. A panic while holding the lock
//! does not poison it — the next locker recovers the inner state, which
//! matches how the I/O and rank layers used parking_lot.

use std::fmt;
use std::sync::PoisonError;

/// A mutual-exclusion lock whose `lock` never returns a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<std::sync::MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&*self.lock()).finish()
    }
}

/// A reader-writer lock whose `read`/`write` never return `Result`s.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_counter() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(5i32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // No poisoning: the value is still reachable.
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
