//! Bounded-shrinking property testing, proptest-shaped.
//!
//! The [`proptest!`] macro accepts the same block form the workspace's
//! tests already use — optional `#![proptest_config(..)]`, then
//! `#[test] fn name(arg in strategy, ..) { body }` items — and expands
//! each into a `#[test]` running [`run_cases`]. Strategies are:
//!
//! * numeric ranges (`-5.0f64..5.0`, `0u64..u64::MAX`, `1usize..60`);
//! * string patterns, a small character-class subset of regex syntax
//!   (`"[a-z]{1,12}"`);
//! * [`collection::vec`]`(strategy, len_range)`.
//!
//! On failure the inputs are shrunk coordinate-by-coordinate under a
//! fixed evaluation budget (no unbounded loops), and the minimal
//! failing case is reported. Case generation is deterministic: the
//! same binary fails the same way every run.

use crate::rng::{Rng, StdRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runner configuration, mirroring `proptest::prelude::ProptestConfig`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A source of random values with bounded shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value: Clone + std::fmt::Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of `value`, simplest first. May be
    /// empty; must not contain `value` itself.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

macro_rules! strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                let lo = self.start;
                if *v != lo {
                    out.push(lo);
                    let half = lo + (*v - lo) / 2;
                    if half != lo && half != *v {
                        out.push(half);
                    }
                    if *v - lo >= 1 {
                        let dec = *v - 1;
                        if dec != half && dec != lo {
                            out.push(dec);
                        }
                    }
                }
                out
            }
        }
    )*};
}
strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
            fn shrink(&self, v: &$t) -> Vec<$t> {
                let mut out = Vec::new();
                // Shrink toward zero if it is in range, else the start.
                let anchor: $t = if self.start <= 0.0 && 0.0 < self.end {
                    0.0
                } else {
                    self.start
                };
                if *v != anchor {
                    out.push(anchor);
                    let half = anchor + (*v - anchor) / 2.0;
                    if half != anchor && half != *v {
                        out.push(half);
                    }
                }
                out
            }
        }
    )*};
}
strategy_float_range!(f32, f64);

/// A character-class string pattern: `[<class>]{min,max}` where the
/// class lists characters and `a-z` ranges. `{n}` fixes the length.
/// This is the subset of regex the workspace's strategies use; anything
/// else panics loudly at test start rather than mis-generating.
#[derive(Debug, Clone)]
pub struct StringPattern {
    alphabet: Vec<char>,
    min_len: usize,
    max_len: usize,
}

impl StringPattern {
    /// Parse the supported pattern subset.
    pub fn parse(pattern: &str) -> Self {
        fn bad(pattern: &str) -> ! {
            panic!(
                "unsupported string pattern {pattern:?}: hacc-rt supports \
                 \"[<chars-and-ranges>]{{min,max}}\" only (see rt::prop docs)"
            );
        }
        let Some(rest) = pattern.strip_prefix('[') else {
            bad(pattern)
        };
        let Some((class, quant)) = rest.split_once(']') else {
            bad(pattern)
        };
        let symbols: Vec<char> = class.chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < symbols.len() {
            // `a-z` range (a lone leading/trailing '-' is a literal).
            if i + 2 < symbols.len() && symbols[i + 1] == '-' {
                for code in (symbols[i] as u32)..=(symbols[i + 2] as u32) {
                    alphabet.extend(char::from_u32(code));
                }
                i += 3;
            } else {
                alphabet.push(symbols[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            bad(pattern);
        }
        let Some(quant) = quant
            .strip_prefix('{')
            .and_then(|q| q.strip_suffix('}'))
        else {
            bad(pattern)
        };
        let parse_len = |s: &str| s.trim().parse::<usize>().map_err(|_| ());
        let (min_len, max_len) = match quant.split_once(',') {
            Some((a, b)) => match (parse_len(a), parse_len(b)) {
                (Ok(a), Ok(b)) => (a, b),
                _ => bad(pattern),
            },
            None => match parse_len(quant) {
                Ok(n) => (n, n),
                Err(()) => bad(pattern),
            },
        };
        assert!(min_len <= max_len, "bad quantifier in {pattern:?}");
        Self {
            alphabet,
            min_len,
            max_len,
        }
    }
}

impl Strategy for StringPattern {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let len = rng.gen_range(self.min_len..=self.max_len);
        (0..len)
            .map(|_| self.alphabet[rng.gen_range(0..self.alphabet.len())])
            .collect()
    }

    fn shrink(&self, v: &String) -> Vec<String> {
        let mut out = Vec::new();
        if v.chars().count() > self.min_len {
            // Drop the last character.
            let shorter: String = {
                let mut s = v.clone();
                s.pop();
                s
            };
            out.push(shorter);
        }
        // Flatten every char to the first alphabet symbol.
        let flat: String = v.chars().map(|_| self.alphabet[0]).collect();
        if &flat != v {
            out.push(flat);
        }
        out
    }
}

/// String literals are patterns (`"[a-z]{1,12}" `-style strategies).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut StdRng) -> String {
        StringPattern::parse(self).generate(rng)
    }
    fn shrink(&self, v: &String) -> Vec<String> {
        StringPattern::parse(self).shrink(v)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::*;

    /// A `Vec` strategy with element strategy and length range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: core::ops::Range<usize>,
    }

    /// `vec(strategy, 0..5)`: vectors whose length is drawn from the
    /// range and whose elements come from `strategy`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }

        fn shrink(&self, v: &Self::Value) -> Vec<Self::Value> {
            let mut out = Vec::new();
            if v.len() > self.len.start {
                // Halve, then drop one.
                if v.len() / 2 >= self.len.start && v.len() / 2 != v.len() {
                    out.push(v[..v.len() / 2].to_vec());
                }
                out.push(v[..v.len() - 1].to_vec());
            }
            // Shrink the first shrinkable element.
            for (i, elem) in v.iter().enumerate() {
                if let Some(smaller) = self.elem.shrink(elem).into_iter().next() {
                    let mut copy = v.clone();
                    copy[i] = smaller;
                    out.push(copy);
                    break;
                }
            }
            out
        }
    }
}

/// A tuple of strategies generating a tuple of values.
pub trait StrategyTuple {
    /// The generated tuple type.
    type Value: Clone + std::fmt::Debug;
    /// Draw one tuple.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
    /// Shrink candidates, varying one coordinate at a time.
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value>;
}

macro_rules! impl_strategy_tuple {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> StrategyTuple for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}
impl_strategy_tuple! {
    (S0.0)
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
    (S0.0, S1.1, S2.2, S3.3, S4.4)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6)
    (S0.0, S1.1, S2.2, S3.3, S4.4, S5.5, S6.6, S7.7)
}

/// Total extra executions allowed while shrinking a failure.
const SHRINK_BUDGET: u32 = 256;

/// Execute `property` over `cfg.cases` generated inputs; on failure,
/// shrink within [`SHRINK_BUDGET`] and panic with the minimal case.
pub fn run_cases<S, F>(cfg: ProptestConfig, strategies: S, property: F)
where
    S: StrategyTuple,
    F: Fn(S::Value),
{
    let fails = |v: &S::Value| {
        catch_unwind(AssertUnwindSafe(|| property(v.clone()))).is_err()
    };
    for case in 0..cfg.cases {
        let mut rng = StdRng::stream(0x9AC5_EED5 ^ (cfg.cases as u64) << 32, case as u64);
        let value = strategies.generate(&mut rng);
        if !fails(&value) {
            continue;
        }
        // Greedy coordinate shrink under a fixed budget.
        let mut best = value;
        let mut budget = SHRINK_BUDGET;
        'outer: while budget > 0 {
            for cand in strategies.shrink(&best) {
                if budget == 0 {
                    break 'outer;
                }
                budget -= 1;
                if fails(&cand) {
                    best = cand;
                    continue 'outer;
                }
            }
            break;
        }
        // Re-run unprotected so the original assertion surfaces too.
        let reassert = catch_unwind(AssertUnwindSafe(|| property(best.clone())));
        let detail = match &reassert {
            Err(e) => e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic>".into()),
            Ok(()) => "property passed on re-run (flaky body?)".into(),
        };
        panic!(
            "property failed on case {case}: minimal failing input = {best:?}\n  cause: {detail}"
        );
    }
}

/// Assert inside a property body (alias of `assert!` — the runner
/// catches the panic, shrinks, and reports).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// The `proptest! { .. }` block macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::prop::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)
     $(
         #[test]
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            #[test]
            fn $name() {
                let cfg = $cfg;
                $crate::prop::run_cases(
                    cfg,
                    ($($strat,)+),
                    |($($arg,)+)| { $body },
                );
            }
        )*
    };
}

// Re-exports so `use hacc_rt::prop as proptest;` supports the fully
// qualified `proptest::proptest!`/`proptest::prop_assert!` call style.
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

/// Glob import mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use super::{ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;

    #[test]
    fn int_range_generates_in_bounds() {
        let strat = 3usize..17;
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = strat.generate(&mut rng);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn float_shrink_moves_toward_zero() {
        let strat = -5.0f64..5.0;
        let c = strat.shrink(&4.0);
        assert!(c.contains(&0.0));
        assert!(strat.shrink(&0.0).is_empty());
    }

    #[test]
    fn string_pattern_parses_class_and_quantifier() {
        let p = StringPattern::parse("[a-z]{1,12}");
        assert_eq!(p.alphabet.len(), 26);
        assert_eq!((p.min_len, p.max_len), (1, 12));
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let s = p.generate(&mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn string_pattern_mixed_class() {
        let p = StringPattern::parse("[a-cxyz_]{2,4}");
        let expect: Vec<char> = "abcxyz_".chars().collect();
        assert_eq!(p.alphabet, expect);
    }

    #[test]
    #[should_panic(expected = "unsupported string pattern")]
    fn string_pattern_rejects_general_regex() {
        StringPattern::parse("(ab|cd)+");
    }

    #[test]
    fn vec_strategy_lengths() {
        let strat = collection::vec(0u64..10, 0..5);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 5);
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn runner_passes_trivially_true_property() {
        run_cases(
            ProptestConfig::with_cases(50),
            (0u64..100, -1.0f64..1.0),
            |(n, x)| {
                assert!(n < 100);
                assert!((-1.0..1.0).contains(&x));
            },
        );
    }

    #[test]
    fn runner_shrinks_to_minimal_counterexample() {
        // Property "n < 40" fails for n >= 40; the shrinker must walk
        // the counterexample down to exactly 40.
        let outcome = catch_unwind(|| {
            run_cases(ProptestConfig::with_cases(200), (0u64..1000,), |(n,)| {
                assert!(n < 40);
            });
        });
        let msg = match outcome {
            Err(e) => e
                .downcast_ref::<String>()
                .cloned()
                .expect("string panic payload"),
            Ok(()) => panic!("property unexpectedly passed"),
        };
        assert!(
            msg.contains("minimal failing input = (40,)"),
            "shrink did not reach 40: {msg}"
        );
    }

    #[test]
    fn runner_is_deterministic() {
        let collect = || {
            let mut seen = Vec::new();
            // A property that never fails but records its inputs via
            // a side channel would need interior mutability; instead
            // just regenerate directly.
            for case in 0..20u32 {
                let mut rng =
                    StdRng::stream(0x9AC5_EED5 ^ 20u64 << 32, case as u64);
                seen.push((0u64..1000).generate(&mut rng));
            }
            seen
        };
        assert_eq!(collect(), collect());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_block_with_config(a in 0u64..50, b in 0u64..50) {
            prop_assert!(a + b < 100);
        }
    }

    proptest! {
        #[test]
        fn macro_block_default_config(x in -2.0f64..2.0) {
            prop_assert!((-2.0..2.0).contains(&x));
        }

        #[test]
        fn macro_block_second_fn(n in 1usize..8, s in "[a-d]{1,3}") {
            prop_assert!(n >= 1);
            prop_assert!(!s.is_empty() && s.len() <= 3);
        }
    }
}
