//! Vector clocks over the global thread-slot space.
//!
//! A clock maps thread slots (see [`crate::registry`]) to logical times.
//! Clocks grow on demand: a slot past the end reads as 0, which is the
//! correct identity for `join` and comparisons — a thread that never
//! synchronized with slot `s` has observed none of `s`'s history.

/// A grow-on-demand vector clock.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    t: Vec<u64>,
}

impl VectorClock {
    /// The zero clock (observed nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Logical time this clock has observed for `slot`.
    #[inline]
    pub fn get(&self, slot: usize) -> u64 {
        self.t.get(slot).copied().unwrap_or(0)
    }

    /// Set `slot`'s component (growing the clock as needed).
    pub fn set(&mut self, slot: usize, time: u64) {
        if slot >= self.t.len() {
            self.t.resize(slot + 1, 0);
        }
        self.t[slot] = time;
    }

    /// Increment `slot`'s component and return the new value.
    pub fn tick(&mut self, slot: usize) -> u64 {
        let v = self.get(slot) + 1;
        self.set(slot, v);
        v
    }

    /// Pointwise maximum: after `a.join(b)`, `a` has observed everything
    /// `a` or `b` had observed.
    pub fn join(&mut self, other: &VectorClock) {
        if other.t.len() > self.t.len() {
            self.t.resize(other.t.len(), 0);
        }
        for (s, &v) in other.t.iter().enumerate() {
            if v > self.t[s] {
                self.t[s] = v;
            }
        }
    }

    /// Whether an event stamped `(slot, time)` happened-before the state
    /// this clock describes (i.e. the clock has observed it).
    #[inline]
    pub fn observed(&self, slot: usize, time: u64) -> bool {
        self.get(slot) >= time
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unobserved_slots_read_zero() {
        let c = VectorClock::new();
        assert_eq!(c.get(17), 0);
        assert!(c.observed(17, 0));
        assert!(!c.observed(17, 1));
    }

    #[test]
    fn join_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.set(0, 5);
        a.set(2, 1);
        let mut b = VectorClock::new();
        b.set(0, 3);
        b.set(1, 7);
        a.join(&b);
        assert_eq!(a.get(0), 5);
        assert_eq!(a.get(1), 7);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn tick_increments_one_component() {
        let mut c = VectorClock::new();
        assert_eq!(c.tick(3), 1);
        assert_eq!(c.tick(3), 2);
        assert_eq!(c.get(3), 2);
        assert_eq!(c.get(2), 0);
    }
}
