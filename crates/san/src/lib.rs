//! `hacc-san` — happens-before race detection and SPMD collective
//! sanitizing for the thread-backed runtime.
//!
//! Because the repo's "ranks" are threads of one process, the dynamic
//! checks that are heuristic at MPI scale (MUST-style collective
//! matching, ThreadSanitizer-style race detection) are **exact** here:
//! every synchronization edge passes through `hacc_rt`'s own sync,
//! channel, and fork/join primitives, and this crate is the clock
//! algebra they call into.
//!
//! The instrumentation contract is *zero-cost when off*: every hook
//! first checks a thread-local session handle and returns immediately
//! when the current thread is not registered with a [`SanSession`].
//! Unsanitized worlds allocate no clocks, take no extra locks, and
//! leave golden telemetry byte-identical.
//!
//! Surface:
//!
//! * [`SanSession`] — one world's checker state (race table, collective
//!   ledger, wait graph); created by `World::run_sanitized`.
//! * [`register_thread`] / [`ThreadToken`] — rank/worker registration.
//! * [`LockClock`], [`send_stamp`]/[`recv_join`], [`fork`]/
//!   [`join_workers`] — the happens-before edges, called from
//!   `hacc_rt::{sync, channel, par}`.
//! * [`region`] / [`annotate_access`] — the shared-state annotation API
//!   for ranks::comm, the driver's ghost buffers, and gpusim's tables.
//! * [`SanReport`] — byte-stable findings report in the shared
//!   `hacc-lint` diagnostic format (`file:line: [RULE] msg`), with
//!   `san.allow` suppression via the same [`AllowList`] grammar.
//!
//! Findings use rules R1 (race), Q1 (collective divergence), W1
//! (deadlock/stall), M1 (p2p payload mismatch) from the shared catalog.

use std::cell::RefCell;
use std::panic::Location;
use std::sync::{Arc, Mutex, OnceLock};

pub mod clock;
pub mod registry;
pub mod report;
pub mod session;

pub use clock::VectorClock;
pub use hacc_lint::{AllowList, Diagnostic, Rule};
pub use registry::{region, RegionId};
pub use report::SanReport;
pub use session::{Access, SanSession};

/// Typed panic payload for sanitizer-initiated aborts (deadlock or
/// payload mismatch). `World` teardown uses the type to distinguish a
/// sanitizer abort — which becomes a reported finding — from a genuine
/// user panic, which keeps unwinding.
#[derive(Debug)]
pub struct SanAbort(pub String);

struct ThreadCtx {
    session: Arc<SanSession>,
    slot: usize,
    clock: VectorClock,
}

thread_local! {
    static TLS: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

#[inline]
fn with_ctx<R>(f: impl FnOnce(&mut ThreadCtx) -> R) -> Option<R> {
    TLS.with(|c| c.borrow_mut().as_mut().map(f))
}

/// Whether the current thread is registered with a session (i.e. the
/// sanitizer is live on this thread).
#[inline]
pub fn armed() -> bool {
    TLS.with(|c| c.borrow().is_some())
}

/// The session the current thread is registered with, if any.
pub fn current_session() -> Option<Arc<SanSession>> {
    with_ctx(|ctx| Arc::clone(&ctx.session))
}

/// Registration receipt for one thread. Must be [`finish`]ed on the
/// same thread before it exits so the slot is recycled correctly.
///
/// [`finish`]: ThreadToken::finish
#[must_use]
pub struct ThreadToken {
    slot: usize,
}

/// Register the current thread with `session`, claiming a clock slot.
/// Panics if the thread is already registered.
pub fn register_thread(session: &Arc<SanSession>) -> ThreadToken {
    let (slot, start) = registry::alloc_slot();
    let mut clock = VectorClock::new();
    clock.set(slot, start);
    TLS.with(|c| {
        let mut c = c.borrow_mut();
        assert!(c.is_none(), "thread already registered with a SanSession");
        *c = Some(ThreadCtx {
            session: Arc::clone(session),
            slot,
            clock,
        });
    });
    ThreadToken { slot }
}

impl ThreadToken {
    /// Deregister, returning the thread's final clock (for fork/join).
    pub fn finish(self) -> VectorClock {
        let ctx = TLS
            .with(|c| c.borrow_mut().take())
            .expect("ThreadToken finished on an unregistered thread");
        assert_eq!(ctx.slot, self.slot, "ThreadToken crossed threads");
        registry::release_slot(ctx.slot, ctx.clock.get(ctx.slot));
        ctx.clock
    }
}

// ------------------------------------------------------------- locks --

/// Per-lock vector clock, embedded in `hacc_rt::sync::{Mutex, RwLock}`.
///
/// `const`-constructible and lazy: the inner clock allocates on first
/// armed acquire, so unsanitized programs pay only a `OnceLock` check
/// that never initializes. Read guards use the same acquire/release
/// pair as writers — that over-synchronizes concurrent readers (fewer
/// reported orderings missed, never a false race), the right default
/// for a gate.
#[derive(Default)]
pub struct LockClock {
    cell: OnceLock<Mutex<VectorClock>>,
}

impl LockClock {
    /// An empty clock cell (usable in `const fn` constructors).
    pub const fn new() -> Self {
        Self {
            cell: OnceLock::new(),
        }
    }

    fn inner(&self) -> &Mutex<VectorClock> {
        self.cell.get_or_init(|| Mutex::new(VectorClock::new()))
    }

    /// Hook after the guarded lock is acquired: the acquiring thread
    /// observes everything released under this lock.
    #[inline]
    pub fn acquire(&self) {
        with_ctx(|ctx| {
            let c = self.inner().lock().unwrap_or_else(|e| e.into_inner());
            ctx.clock.join(&c);
        });
    }

    /// Hook before the guarded lock is released: publish this thread's
    /// history to the next acquirer and advance the local epoch.
    #[inline]
    pub fn release(&self) {
        with_ctx(|ctx| {
            let mut c = self.inner().lock().unwrap_or_else(|e| e.into_inner());
            c.join(&ctx.clock);
            drop(c);
            ctx.clock.tick(ctx.slot);
        });
    }
}

impl std::fmt::Debug for LockClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("LockClock")
    }
}

// ---------------------------------------------------------- channels --

/// Clock stamp attached to an in-flight channel message.
pub type Stamp = Box<VectorClock>;

/// Sender-side hook: snapshot the sender's clock onto the message and
/// advance the sender's epoch. `None` when the sanitizer is off.
#[inline]
pub fn send_stamp() -> Option<Stamp> {
    with_ctx(|ctx| {
        let snap = Box::new(ctx.clock.clone());
        ctx.clock.tick(ctx.slot);
        snap
    })
}

/// Receiver-side hook: the receive happens-after the stamped send.
#[inline]
pub fn recv_join(stamp: Option<&VectorClock>) {
    if let Some(s) = stamp {
        with_ctx(|ctx| ctx.clock.join(s));
    }
}

// --------------------------------------------------------- fork/join --

/// Capability handed to scoped workers by a forking (parent) thread.
#[derive(Clone)]
pub struct ForkHandle {
    session: Arc<SanSession>,
    stamp: VectorClock,
}

/// Parent-side fork hook: snapshot the parent clock for workers to
/// inherit, and advance the parent epoch. `None` when off.
pub fn fork() -> Option<ForkHandle> {
    with_ctx(|ctx| {
        let stamp = ctx.clock.clone();
        ctx.clock.tick(ctx.slot);
        ForkHandle {
            session: Arc::clone(&ctx.session),
            stamp,
        }
    })
}

impl ForkHandle {
    /// Worker-side entry: register the worker thread and order it after
    /// the fork point.
    pub fn enter(&self) -> ThreadToken {
        let tok = register_thread(&self.session);
        with_ctx(|ctx| ctx.clock.join(&self.stamp));
        tok
    }
}

/// Parent-side join hook: the parent happens-after every worker's exit
/// clock (as returned by [`ThreadToken::finish`]).
pub fn join_workers<I: IntoIterator<Item = VectorClock>>(clocks: I) {
    with_ctx(|ctx| {
        for c in clocks {
            ctx.clock.join(&c);
        }
        ctx.clock.tick(ctx.slot);
    });
}

// -------------------------------------------------------- annotation --

/// Record an access to a registered shared region and check it against
/// the region's access history under the happens-before relation. The
/// call site becomes the diagnostic location. No-op when the sanitizer
/// is off.
#[track_caller]
#[inline]
pub fn annotate_access(region: RegionId, kind: Access) {
    let loc = Location::caller();
    with_ctx(|ctx| ctx.session.access(region, kind, ctx.slot, &ctx.clock, loc));
}

/// [`annotate_access`] with [`Access::Read`].
#[track_caller]
#[inline]
pub fn annotate_read(region: RegionId) {
    let loc = Location::caller();
    with_ctx(|ctx| {
        ctx.session
            .access(region, Access::Read, ctx.slot, &ctx.clock, loc)
    });
}

/// [`annotate_access`] with [`Access::Write`].
#[track_caller]
#[inline]
pub fn annotate_write(region: RegionId) {
    let loc = Location::caller();
    with_ctx(|ctx| {
        ctx.session
            .access(region, Access::Write, ctx.slot, &ctx.clock, loc)
    });
}

/// A lazily registered region for embedding in `Clone` containers.
/// Cloning yields a *fresh* region: a cloned table is a distinct object
/// whose accesses must not be checked against the original's.
pub struct LazyRegion {
    name: &'static str,
    cell: OnceLock<RegionId>,
}

impl LazyRegion {
    /// A not-yet-registered region named `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            cell: OnceLock::new(),
        }
    }

    /// The region id, registering on first use.
    pub fn id(&self) -> RegionId {
        *self.cell.get_or_init(|| region(self.name))
    }
}

impl Clone for LazyRegion {
    fn clone(&self) -> Self {
        Self::new(self.name)
    }
}

impl std::fmt::Debug for LazyRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LazyRegion({})", self.name)
    }
}

// ------------------------------------------------------- environment --

/// Whether `HACC_SAN` requests sanitizing every `World::run` (the
/// tier-4 full-suite gate). Read once per process.
pub fn env_armed() -> bool {
    static ARMED: OnceLock<bool> = OnceLock::new();
    *ARMED.get_or_init(|| {
        std::env::var("HACC_SAN")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false)
    })
}

/// The suppression list named by `HACC_SAN_ALLOW`, or an empty list.
/// A malformed file is a hard error (suppressions without justification
/// must not silently vanish).
pub fn env_allowlist() -> AllowList {
    match std::env::var("HACC_SAN_ALLOW") {
        Ok(path) if !path.is_empty() => {
            let text = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("HACC_SAN_ALLOW: read {path}: {e}"));
            AllowList::parse(&text, &path).unwrap_or_else(|e| panic!("HACC_SAN_ALLOW: {e}"))
        }
        _ => AllowList::empty(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_noops_when_unregistered() {
        assert!(!armed());
        assert!(send_stamp().is_none());
        recv_join(None);
        assert!(fork().is_none());
        let lc = LockClock::new();
        lc.acquire();
        lc.release();
        let r = region("noop");
        annotate_write(r);
        annotate_read(r);
        join_workers(Vec::new());
        assert!(current_session().is_none());
    }

    #[test]
    fn registration_arms_and_finish_disarms() {
        let s = SanSession::new(1);
        let tok = register_thread(&s);
        assert!(armed());
        assert!(send_stamp().is_some());
        let clock = tok.finish();
        assert!(!armed());
        // The thread ticked once for the send stamp; its component is
        // visible in the returned clock.
        assert!(clock != VectorClock::new());
    }

    #[test]
    fn channel_stamp_orders_sender_before_receiver() {
        let s = SanSession::new(2);
        let reg = region("stamped");
        let t0 = register_thread(&s);
        annotate_write(reg);
        let stamp = send_stamp();
        let c0 = t0.finish();
        drop(c0);

        // A second (simulated) thread receives and then writes: ordered.
        let t1 = register_thread(&s);
        recv_join(stamp.as_deref());
        annotate_write(reg);
        t1.finish();
        assert!(s.finish().findings.is_empty());
    }

    #[test]
    fn unstamped_threads_race_on_shared_region() {
        let s = SanSession::new(2);
        let reg = region("racy");
        // Hold both threads alive across registration: a thread that
        // exits before the other starts would release its slot, and the
        // slot-reuse epoch rule (correctly) treats the successor as
        // ordered after it.
        let rendezvous = Arc::new(std::sync::Barrier::new(2));
        let out = std::thread::scope(|scope| {
            let h: Vec<_> = (0..2)
                .map(|_| {
                    let s = Arc::clone(&s);
                    let rendezvous = Arc::clone(&rendezvous);
                    scope.spawn(move || {
                        let tok = register_thread(&s);
                        rendezvous.wait();
                        annotate_write(reg);
                        tok.finish();
                    })
                })
                .collect();
            for h in h {
                h.join().unwrap();
            }
            s.finish()
        });
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].rule, Rule::R1);
    }

    #[test]
    fn lock_clock_orders_critical_sections() {
        let s = SanSession::new(2);
        let reg = region("guarded");
        let lc = Arc::new(LockClock::new());
        let guard = Arc::new(Mutex::new(()));
        std::thread::scope(|scope| {
            let hs: Vec<_> = (0..2)
                .map(|_| {
                    let s = Arc::clone(&s);
                    let lc = Arc::clone(&lc);
                    let guard = Arc::clone(&guard);
                    scope.spawn(move || {
                        let tok = register_thread(&s);
                        // A real lock serializes the sections; the clock
                        // hook records the ordering it creates.
                        let g = guard.lock().unwrap();
                        lc.acquire();
                        annotate_write(reg);
                        lc.release();
                        drop(g);
                        tok.finish();
                    })
                })
                .collect();
            for h in hs {
                h.join().unwrap();
            }
        });
        assert!(
            s.finish().findings.is_empty(),
            "lock-ordered writes must not race"
        );
    }

    #[test]
    fn fork_join_orders_workers_with_parent() {
        let s = SanSession::new(1);
        let reg = region("forked");
        let tok = register_thread(&s);
        annotate_write(reg);
        let fh = fork().expect("armed");
        let clocks: Vec<VectorClock> = std::thread::scope(|scope| {
            (0..3)
                .map(|_| {
                    let fh = fh.clone();
                    scope.spawn(move || {
                        let t = fh.enter();
                        annotate_read(reg);
                        t.finish()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        join_workers(clocks);
        annotate_write(reg); // after join: ordered after every worker read
        tok.finish();
        assert!(s.finish().findings.is_empty());
    }
}
