//! A sanitizer session: one `World::run`'s worth of dynamic checking.
//!
//! The session owns three checkers, all exact because every "rank" is a
//! thread of this process observing one shared logical clock space:
//!
//! * **Race table** — FastTrack-style happens-before checking over
//!   annotated regions: each region keeps its last write epoch and the
//!   per-thread read set; an access that is not ordered after a prior
//!   conflicting access by the vector-clock relation is a race (R1).
//! * **Collective ledger** — MUST-style matching: the i-th collective
//!   of every rank must carry the same (call site, kind, element type,
//!   element size, root) signature. The first arriver at position i
//!   records the signature; later ranks compare (Q1).
//! * **Wait graph** — every blocking receive declares what it waits on;
//!   a rank whose receive times out walks the graph, and a cycle (or a
//!   chain ending at an exited rank) whose members' logical progress
//!   counters are frozen across three consecutive ticks is reported as
//!   a deadlock (W1) instead of hanging the suite. Progress is logical,
//!   not wall-clock, so `--chaos` comm-delay faults — which hold
//!   messages until the sender's next transport op, never across a
//!   blocked sender — cannot false-positive.
//!
//! Internals use `std::sync` directly, never the instrumented
//! `hacc_rt::sync` wrappers, so the sanitizer cannot recurse into
//! itself.

use std::collections::{BTreeMap, BTreeSet};
use std::panic::Location;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use hacc_lint::diag::normalize;
use hacc_lint::{Diagnostic, Rule};

use crate::clock::VectorClock;
use crate::registry::{region_name, RegionId};
use crate::report::SanReport;

/// Read or write, for [`crate::annotate_access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Shared read.
    Read,
    /// Exclusive write.
    Write,
}

/// Consecutive frozen deadlock-scan ticks required before reporting.
/// Each tick is one receive timeout (~100 ms), so a false positive
/// needs a runnable thread starved for the whole confirmation window.
const DEADLOCK_CONFIRMS: u32 = 3;

#[derive(Clone)]
struct SiteStamp {
    slot: usize,
    time: u64,
    file: &'static str,
    line: u32,
    kind: Access,
}

#[derive(Default)]
struct RegionState {
    last_write: Option<SiteStamp>,
    reads: Vec<SiteStamp>,
}

struct CollSlot {
    kind: &'static str,
    elem: &'static str,
    bytes: usize,
    root: usize,
    file: &'static str,
    line: u32,
    first_rank: usize,
}

impl CollSlot {
    fn describe(&self) -> String {
        format!(
            "{}<{}> ({} B/elem, root {}) at {}:{}",
            self.kind, self.elem, self.bytes, self.root, self.file, self.line
        )
    }
}

struct WaitOn {
    src: usize,
    detail: String,
    file: &'static str,
    line: u32,
}

#[derive(Default)]
struct RankWait {
    waiting: Option<WaitOn>,
    progress: u64,
    exited: bool,
    /// Last deadlock-scan snapshot: (chain members, their progress).
    candidate: Option<(Vec<usize>, Vec<u64>)>,
    confirms: u32,
}

struct SessionState {
    regions: BTreeMap<u64, RegionState>,
    findings: Vec<Diagnostic>,
    finding_keys: BTreeSet<String>,
    coll_slots: Vec<CollSlot>,
    coll_next: Vec<usize>,
    waits: Vec<RankWait>,
    accesses: u64,
}

/// One world's sanitizer context. Created by
/// `hacc_ranks::World::run_sanitized`, shared by every rank thread.
pub struct SanSession {
    ranks: usize,
    state: Mutex<SessionState>,
    aborted: AtomicBool,
}

impl SanSession {
    /// A fresh session for a world of `ranks` ranks.
    pub fn new(ranks: usize) -> Arc<Self> {
        Arc::new(Self {
            ranks,
            state: Mutex::new(SessionState {
                regions: BTreeMap::new(),
                findings: Vec::new(),
                finding_keys: BTreeSet::new(),
                coll_slots: Vec::new(),
                coll_next: vec![0; ranks],
                waits: (0..ranks).map(|_| RankWait::default()).collect(),
                accesses: 0,
            }),
            aborted: AtomicBool::new(false),
        })
    }

    /// World size this session checks.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SessionState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Whether a sanitizer-initiated abort is in flight (deadlock or
    /// mismatch panic). Rank teardown uses this to tell sanitizer
    /// aborts from genuine user panics.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// Mark the session aborted; returns true for the first caller so
    /// exactly one rank owns the teardown.
    pub fn set_aborted(&self) -> bool {
        !self.aborted.swap(true, Ordering::SeqCst)
    }

    /// Record a finding, deduplicated by `key`.
    pub fn report(&self, rule: Rule, file: &str, line: u32, message: String, key: String) {
        let mut st = self.lock();
        if st.finding_keys.insert(key) {
            st.findings.push(Diagnostic {
                file: file.to_string(),
                line,
                rule,
                message,
            });
        }
    }

    /// Whether any findings have been recorded so far.
    pub fn has_findings(&self) -> bool {
        !self.lock().findings.is_empty()
    }

    // ------------------------------------------------------------ race --

    pub(crate) fn access(
        &self,
        region: RegionId,
        kind: Access,
        slot: usize,
        clock: &VectorClock,
        loc: &'static Location<'static>,
    ) {
        let here = SiteStamp {
            slot,
            time: clock.get(slot),
            file: loc.file(),
            line: loc.line(),
            kind,
        };
        let mut races: Vec<SiteStamp> = Vec::new();
        let mut st = self.lock();
        st.accesses += 1;
        let rs = st.regions.entry(region.0).or_default();
        match kind {
            Access::Write => {
                if let Some(w) = &rs.last_write {
                    if w.slot != slot && !clock.observed(w.slot, w.time) {
                        races.push(w.clone());
                    }
                }
                for r in &rs.reads {
                    if r.slot != slot && !clock.observed(r.slot, r.time) {
                        races.push(r.clone());
                    }
                }
                rs.last_write = Some(here.clone());
                rs.reads.clear();
            }
            Access::Read => {
                if let Some(w) = &rs.last_write {
                    if w.slot != slot && !clock.observed(w.slot, w.time) {
                        races.push(w.clone());
                    }
                }
                if let Some(r) = rs.reads.iter_mut().find(|r| r.slot == slot) {
                    r.time = here.time;
                    r.file = here.file;
                    r.line = here.line;
                } else {
                    rs.reads.push(here.clone());
                }
            }
        }
        drop(st);
        let verb = |k: Access| match k {
            Access::Read => "read",
            Access::Write => "write",
        };
        for prior in races {
            self.report(
                Rule::R1,
                here.file,
                here.line,
                format!(
                    "data race on region `{}`: this {} and the {} at {}:{} \
                     are unordered by happens-before",
                    region_name(region),
                    verb(here.kind),
                    verb(prior.kind),
                    prior.file,
                    prior.line
                ),
                format!(
                    "R1:{}:{}:{}:{}:{}",
                    region.0, here.file, here.line, prior.file, prior.line
                ),
            );
        }
    }

    // ------------------------------------------------------ collectives --

    /// Record that `rank` entered a collective with the given signature;
    /// flags sequence/signature divergence against earlier arrivers.
    pub fn record_collective(
        &self,
        rank: usize,
        kind: &'static str,
        elem: &'static str,
        bytes: usize,
        root: usize,
        loc: &'static Location<'static>,
    ) {
        let mut st = self.lock();
        let idx = st.coll_next[rank];
        st.coll_next[rank] += 1;
        if idx == st.coll_slots.len() {
            st.coll_slots.push(CollSlot {
                kind,
                elem,
                bytes,
                root,
                file: loc.file(),
                line: loc.line(),
                first_rank: rank,
            });
            return;
        }
        let slot = &st.coll_slots[idx];
        let matches = slot.kind == kind
            && slot.elem == elem
            && slot.bytes == bytes
            && slot.root == root
            && slot.file == loc.file()
            && slot.line == loc.line();
        if !matches {
            let msg = format!(
                "collective sequence diverged at position {idx}: rank {} \
                 entered {} but rank {rank} entered {}<{}> ({} B/elem, \
                 root {}) at {}:{}",
                slot.first_rank,
                slot.describe(),
                kind,
                elem,
                bytes,
                root,
                loc.file(),
                loc.line()
            );
            let (file, line) = (loc.file(), loc.line());
            drop(st);
            self.report(Rule::Q1, file, line, msg, format!("Q1:seq:{idx}:{rank}"));
        }
    }

    // ------------------------------------------------------- wait graph --

    /// Declare that `rank` is about to block waiting for a message from
    /// `src`; `detail` is the human description used in deadlock dumps.
    pub fn begin_wait(
        &self,
        rank: usize,
        src: usize,
        detail: String,
        loc: &'static Location<'static>,
    ) {
        let mut st = self.lock();
        let w = &mut st.waits[rank];
        w.waiting = Some(WaitOn {
            src,
            detail,
            file: loc.file(),
            line: loc.line(),
        });
        w.candidate = None;
        w.confirms = 0;
    }

    /// The wait was satisfied: clear it and advance logical progress.
    pub fn end_wait(&self, rank: usize) {
        let mut st = self.lock();
        let w = &mut st.waits[rank];
        w.waiting = None;
        w.candidate = None;
        w.confirms = 0;
        w.progress += 1;
    }

    /// A non-blocking transport op completed on `rank` (logical time).
    pub fn note_progress(&self, rank: usize) {
        self.lock().waits[rank].progress += 1;
    }

    /// The rank's closure returned; it will never send again.
    pub fn rank_exited(&self, rank: usize) {
        let mut st = self.lock();
        st.waits[rank].exited = true;
        st.waits[rank].waiting = None;
    }

    /// One deadlock-scan tick, run by a rank whose blocking receive
    /// timed out. Returns `true` when a deadlock was confirmed and
    /// recorded and this rank should abort the world.
    pub fn deadlock_tick(&self, rank: usize) -> bool {
        if self.is_aborted() {
            return false;
        }
        let mut st = self.lock();
        // Walk the wait-for edges starting from this rank.
        let mut chain = vec![rank];
        let mut stalled = false;
        loop {
            let cur = *chain.last().unwrap();
            let Some(w) = &st.waits[cur].waiting else {
                if st.waits[cur].exited {
                    // Chain dead-ends at a rank that can never send.
                    stalled = true;
                    break;
                }
                // Someone in the chain is runnable: no deadlock now.
                st.waits[rank].candidate = None;
                st.waits[rank].confirms = 0;
                return false;
            };
            let next = w.src;
            if chain.contains(&next) {
                break; // cycle
            }
            chain.push(next);
        }
        let progress: Vec<u64> = chain.iter().map(|&r| st.waits[r].progress).collect();
        let snapshot = (chain.clone(), progress);
        let w = &mut st.waits[rank];
        if w.candidate.as_ref() == Some(&snapshot) {
            w.confirms += 1;
        } else {
            w.candidate = Some(snapshot);
            w.confirms = 1;
        }
        if w.confirms < DEADLOCK_CONFIRMS {
            return false;
        }
        // Confirmed: render one finding describing the whole chain, with
        // per-rank call sites, anchored at the lowest-ranked waiter so
        // the text is independent of which rank detected it.
        let start = chain
            .iter()
            .position(|&r| r == *chain.iter().min().unwrap())
            .unwrap();
        let order: Vec<usize> = (0..chain.len())
            .map(|i| chain[(start + i) % chain.len()])
            .collect();
        let mut parts: Vec<String> = Vec::new();
        for &r in &order {
            match &st.waits[r].waiting {
                Some(w) => parts.push(format!(
                    "rank {r} waits on rank {} ({}) at {}:{}",
                    w.src, w.detail, w.file, w.line
                )),
                None => parts.push(format!("rank {r} exited")),
            }
        }
        let what = if stalled {
            "wait on an exited rank"
        } else {
            "deadlock cycle"
        };
        let anchor = st.waits[order[0]].waiting.as_ref();
        let (file, line) = anchor
            .map(|w| (w.file.to_string(), w.line))
            .unwrap_or_else(|| ("crates/ranks/src/comm.rs".to_string(), 0));
        let mut key_members = chain.clone();
        key_members.sort_unstable();
        drop(st);
        self.report(
            Rule::W1,
            &file,
            line,
            format!(
                "{what} confirmed (logical progress frozen over \
                 {DEADLOCK_CONFIRMS} ticks): {}",
                parts.join("; ")
            ),
            format!("W1:{key_members:?}"),
        );
        self.set_aborted();
        true
    }

    // ----------------------------------------------------------- finish --

    /// End-of-world checks and report assembly. Call after every rank
    /// thread has been joined.
    pub fn finish(&self) -> SanReport {
        let mut st = self.lock();
        // Collective-count divergence: every rank must have executed the
        // same number of collectives (signature equality at each position
        // was already checked on entry).
        let min = st.coll_next.iter().copied().min().unwrap_or(0);
        let max = st.coll_next.iter().copied().max().unwrap_or(0);
        if min != max {
            let lo = st.coll_next.iter().position(|&n| n == min).unwrap();
            let hi = st.coll_next.iter().position(|&n| n == max).unwrap();
            let (file, line, describe) = match st.coll_slots.get(min) {
                Some(s) => (s.file.to_string(), s.line, s.describe()),
                None => ("crates/ranks/src/comm.rs".to_string(), 0, String::new()),
            };
            let msg = format!(
                "collective count diverged: rank {lo} executed {min} \
                 collective(s) but rank {hi} executed {max}; first \
                 unmatched: {describe}"
            );
            if st.finding_keys.insert("Q1:count".to_string()) {
                st.findings.push(Diagnostic {
                    file,
                    line,
                    rule: Rule::Q1,
                    message: msg,
                });
            }
        }
        SanReport {
            ranks: self.ranks,
            findings: normalize(std::mem::take(&mut st.findings)),
            suppressed: 0,
            collectives: st.coll_slots.len() as u64,
            regions: st.regions.len() as u64,
            accesses: st.accesses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::region;

    fn loc() -> &'static Location<'static> {
        Location::caller()
    }

    #[test]
    fn matching_collectives_are_clean() {
        let s = SanSession::new(2);
        let site = loc();
        for rank in 0..2 {
            s.record_collective(rank, "barrier", "()", 0, 0, site);
            s.record_collective(rank, "all_gather", "u64", 8, 0, site);
        }
        let r = s.finish();
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.collectives, 2);
    }

    #[test]
    fn signature_divergence_is_q1() {
        let s = SanSession::new(2);
        let site = loc();
        s.record_collective(0, "barrier", "()", 0, 0, site);
        s.record_collective(1, "broadcast", "u32", 4, 0, site);
        let r = s.finish();
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, Rule::Q1);
        assert!(r.findings[0].message.contains("barrier"));
        assert!(r.findings[0].message.contains("broadcast"));
    }

    #[test]
    fn count_divergence_is_q1() {
        let s = SanSession::new(2);
        let site = loc();
        s.record_collective(0, "barrier", "()", 0, 0, site);
        let r = s.finish();
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, Rule::Q1);
        assert!(r.findings[0].message.contains("count diverged"));
    }

    #[test]
    fn unordered_writes_race() {
        let s = SanSession::new(2);
        let reg = region("fixture");
        let mut c0 = VectorClock::new();
        c0.set(10, 1);
        let mut c1 = VectorClock::new();
        c1.set(11, 1);
        s.access(reg, Access::Write, 10, &c0, loc());
        s.access(reg, Access::Write, 11, &c1, loc());
        let r = s.finish();
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, Rule::R1);
        assert!(r.findings[0].message.contains("fixture"));
    }

    #[test]
    fn ordered_writes_are_clean() {
        let s = SanSession::new(2);
        let reg = region("fixture");
        let mut c0 = VectorClock::new();
        c0.set(10, 1);
        s.access(reg, Access::Write, 10, &c0, loc());
        // Thread 11 has observed thread 10's epoch (joined its clock).
        let mut c1 = VectorClock::new();
        c1.set(11, 1);
        c1.join(&c0);
        s.access(reg, Access::Write, 11, &c1, loc());
        assert!(s.finish().findings.is_empty());
    }

    #[test]
    fn concurrent_reads_do_not_race() {
        let s = SanSession::new(2);
        let reg = region("fixture");
        let mut c0 = VectorClock::new();
        c0.set(10, 1);
        let mut c1 = VectorClock::new();
        c1.set(11, 1);
        s.access(reg, Access::Read, 10, &c0, loc());
        s.access(reg, Access::Read, 11, &c1, loc());
        assert!(s.finish().findings.is_empty());
    }

    #[test]
    fn deadlock_cycle_confirms_after_frozen_ticks() {
        let s = SanSession::new(2);
        s.begin_wait(0, 1, "recv(src=1, tag=9)".into(), loc());
        s.begin_wait(1, 0, "recv(src=0, tag=7)".into(), loc());
        assert!(!s.deadlock_tick(0));
        assert!(!s.deadlock_tick(0));
        assert!(s.deadlock_tick(0));
        let r = s.finish();
        assert_eq!(r.findings.len(), 1);
        assert_eq!(r.findings[0].rule, Rule::W1);
        assert!(r.findings[0].message.contains("rank 0 waits on rank 1"));
        assert!(r.findings[0].message.contains("rank 1 waits on rank 0"));
    }

    #[test]
    fn progress_resets_deadlock_confirmation() {
        let s = SanSession::new(2);
        s.begin_wait(0, 1, "recv".into(), loc());
        s.begin_wait(1, 0, "recv".into(), loc());
        assert!(!s.deadlock_tick(0));
        assert!(!s.deadlock_tick(0));
        // Rank 1's wait is satisfied and it re-blocks: logical progress
        // moved, so the scan starts over.
        s.end_wait(1);
        s.begin_wait(1, 0, "recv".into(), loc());
        assert!(!s.deadlock_tick(0));
        assert!(!s.deadlock_tick(0));
        assert!(s.deadlock_tick(0));
    }

    #[test]
    fn runnable_rank_blocks_no_deadlock() {
        let s = SanSession::new(2);
        s.begin_wait(0, 1, "recv".into(), loc());
        // Rank 1 is computing (no wait declared): never a deadlock.
        for _ in 0..10 {
            assert!(!s.deadlock_tick(0));
        }
        assert!(s.finish().findings.is_empty());
    }

    #[test]
    fn wait_on_exited_rank_is_a_stall() {
        let s = SanSession::new(2);
        s.rank_exited(1);
        s.begin_wait(0, 1, "recv(src=1, tag=3)".into(), loc());
        assert!(!s.deadlock_tick(0));
        assert!(!s.deadlock_tick(0));
        assert!(s.deadlock_tick(0));
        let r = s.finish();
        assert_eq!(r.findings[0].rule, Rule::W1);
        assert!(r.findings[0].message.contains("exited"));
    }
}
