//! The byte-stable sanitizer report.
//!
//! Rendering contains only deterministic quantities: rank count,
//! ledger-checked collectives, tracked regions, annotated accesses, and
//! the normalized findings. Scheduling-dependent counters (lock
//! acquisitions, channel stamps, deadlock-scan ticks) are deliberately
//! excluded so two identical clean runs produce byte-identical reports
//! — the property the tier-4 gate byte-compares.

use std::fmt::Write as _;

use hacc_lint::diag::normalize;
use hacc_lint::{AllowList, Diagnostic};

/// Outcome of one sanitized world.
#[derive(Debug, Clone)]
pub struct SanReport {
    /// World size.
    pub ranks: usize,
    /// Unsuppressed findings, normalized (sorted + deduplicated).
    pub findings: Vec<Diagnostic>,
    /// Findings matched by `san.allow` entries.
    pub suppressed: usize,
    /// Collective positions the ledger matched across ranks.
    pub collectives: u64,
    /// Distinct annotated regions touched.
    pub regions: u64,
    /// Total annotated accesses checked.
    pub accesses: u64,
}

impl SanReport {
    /// Partition findings through a `san.allow` suppression list.
    pub fn apply_allow(&mut self, allow: &mut AllowList) {
        let mut kept = Vec::new();
        for d in std::mem::take(&mut self.findings) {
            if allow.suppresses(&d) {
                self.suppressed += 1;
            } else {
                kept.push(d);
            }
        }
        self.findings = normalize(kept);
    }

    /// Whether the run is clean (no unsuppressed findings).
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The canonical text report (byte-stable across identical runs).
    pub fn render_text(&self) -> String {
        let mut w = String::new();
        let _ = writeln!(w, "# hacc-san report");
        let _ = writeln!(w, "ranks               : {}", self.ranks);
        let _ = writeln!(w, "collectives checked : {}", self.collectives);
        let _ = writeln!(w, "regions tracked     : {}", self.regions);
        let _ = writeln!(w, "accesses annotated  : {}", self.accesses);
        let _ = writeln!(w, "findings            : {}", self.findings.len());
        let _ = writeln!(w, "suppressed          : {}", self.suppressed);
        for d in &self.findings {
            let _ = writeln!(w, "{}", d.render());
        }
        w
    }

    /// Compact golden-section lines for the telemetry report.
    pub fn golden_lines(&self) -> Vec<String> {
        let mut out = vec![format!(
            "[sanitizer] collectives {} regions {} accesses {} findings {} suppressed {}",
            self.collectives,
            self.regions,
            self.accesses,
            self.findings.len(),
            self.suppressed
        )];
        out.extend(self.findings.iter().map(|d| format!("[sanitizer] {}", d.render())));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hacc_lint::Rule;

    fn report_with(findings: Vec<Diagnostic>) -> SanReport {
        SanReport {
            ranks: 2,
            findings,
            suppressed: 0,
            collectives: 3,
            regions: 1,
            accesses: 4,
        }
    }

    #[test]
    fn render_is_stable_and_complete() {
        let r = report_with(vec![Diagnostic {
            file: "crates/x/src/lib.rs".into(),
            line: 9,
            rule: Rule::R1,
            message: "race".into(),
        }]);
        let t = r.render_text();
        assert_eq!(t, r.render_text());
        assert!(t.contains("findings            : 1"));
        assert!(t.contains("crates/x/src/lib.rs:9: [R1] race"));
    }

    #[test]
    fn allowlist_suppresses_with_justification() {
        let mut r = report_with(vec![Diagnostic {
            file: "crates/x/src/lib.rs".into(),
            line: 9,
            rule: Rule::R1,
            message: "race".into(),
        }]);
        let mut allow = AllowList::parse(
            "crates/x/src/lib.rs: R1: benign racy stat counter, values never read back\n",
            "san.allow",
        )
        .unwrap();
        r.apply_allow(&mut allow);
        assert!(r.is_clean());
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn clean_report_golden_line() {
        let r = report_with(Vec::new());
        assert_eq!(
            r.golden_lines(),
            vec!["[sanitizer] collectives 3 regions 1 accesses 4 findings 0 suppressed 0"]
        );
    }
}
