//! Global thread-slot and region registries.
//!
//! Vector clocks index threads by a small dense *slot* id. Slots are
//! allocated when a thread registers with a sanitizer session and
//! recycled through a free list when it exits — but a slot's logical
//! time is **monotonic across reuse**: a thread taking over slot `s`
//! starts strictly above the time the previous occupant retired at, so
//! a stale clock can never mistake the new occupant's events for the
//! old one's (the classic epoch-confusion bug in recycled-tid race
//! detectors).
//!
//! Regions are the unit of race detection: any shared object a caller
//! wants checked registers once and annotates accesses against the
//! returned [`RegionId`]. Ids are process-global so a region can be
//! shared across sessions and threads freely.
//!
//! Internals use `std::sync` directly — the sanitizer must never route
//! through the instrumented `hacc_rt::sync` wrappers it observes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

struct SlotTable {
    /// Last retired logical time per slot (0 = never occupied).
    retired: Vec<u64>,
    /// Currently unoccupied slots.
    free: Vec<usize>,
}

static SLOTS: Mutex<SlotTable> = Mutex::new(SlotTable {
    retired: Vec::new(),
    free: Vec::new(),
});

/// Claim a slot. Returns `(slot, start_time)`; the occupant's first
/// event must be stamped at `start_time`, which is strictly greater
/// than anything the slot's previous occupants published.
pub(crate) fn alloc_slot() -> (usize, u64) {
    let mut t = SLOTS.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(slot) = t.free.pop() {
        (slot, t.retired[slot] + 1)
    } else {
        t.retired.push(0);
        (t.retired.len() - 1, 1)
    }
}

/// Retire a slot at `final_time` (the occupant's own component when it
/// exited), making it available for reuse above that time.
pub(crate) fn release_slot(slot: usize, final_time: u64) {
    let mut t = SLOTS.lock().unwrap_or_else(|e| e.into_inner());
    if t.retired[slot] < final_time {
        t.retired[slot] = final_time;
    }
    t.free.push(slot);
}

/// A registered shared region: the unit of race detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct RegionId(pub(crate) u64);

static NEXT_REGION: AtomicU64 = AtomicU64::new(1);
static REGION_NAMES: Mutex<Vec<(u64, &'static str)>> = Mutex::new(Vec::new());

/// Register a shared region under a diagnostic name. Each call returns
/// a distinct region — two objects that should be checked against each
/// other must share one `RegionId`.
pub fn region(name: &'static str) -> RegionId {
    let id = NEXT_REGION.fetch_add(1, Ordering::Relaxed);
    REGION_NAMES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push((id, name));
    RegionId(id)
}

/// Diagnostic name a region was registered under.
pub(crate) fn region_name(id: RegionId) -> &'static str {
    REGION_NAMES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .find(|(i, _)| *i == id.0)
        .map(|(_, n)| *n)
        .unwrap_or("<unregistered>")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_reuse_is_monotonic() {
        let (s1, t1) = alloc_slot();
        assert!(t1 >= 1);
        release_slot(s1, t1 + 41);
        // The free list hands the same slot back, above the retired time.
        let (s2, t2) = alloc_slot();
        // Another test thread may have raced us to the freed slot; only
        // assert the invariant that matters: reuse starts strictly above
        // retirement.
        if s2 == s1 {
            assert!(t2 > t1 + 41);
        }
        release_slot(s2, t2);
    }

    #[test]
    fn regions_are_distinct_and_named() {
        let a = region("table");
        let b = region("table");
        assert_ne!(a, b);
        assert_eq!(region_name(a), "table");
        assert_eq!(region_name(b), "table");
    }
}
