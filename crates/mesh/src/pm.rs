//! The end-to-end PM solver: deposit → forward FFT → Green's function ×
//! spectral gradient → inverse FFTs → interpolation at particle positions.

use crate::cic;
use crate::poisson::{apply_greens_gradient, GreensOptions};
use hacc_ranks::Comm;
use hacc_swfft::{Complex64, DistFft3d};

/// Configuration of the PM gravity solve.
#[derive(Debug, Clone, Copy)]
pub struct PmConfig {
    /// Global mesh size per dimension.
    pub n: usize,
    /// Periodic box size (length units; Mpc/h in the simulation).
    pub box_size: f64,
    /// Poisson prefactor (e.g. `4 pi G`, or the comoving-cosmology factor).
    pub prefactor: f64,
    /// Gaussian force-split scale `r_s`; zero = plain (unsplit) PM.
    pub split_scale: f64,
    /// Deconvolve the CIC window.
    pub deconvolve_cic: bool,
}

impl PmConfig {
    /// A sensible default: split scale ~1.5 grid cells, CIC deconvolution
    /// on (HACC hands over to the short-range solver at a few grid cells).
    pub fn new(n: usize, box_size: f64, prefactor: f64) -> Self {
        Self {
            n,
            box_size,
            prefactor,
            split_scale: 1.5 * box_size / n as f64,
            deconvolve_cic: true,
        }
    }
}

/// Per-rank PM solver handle. Construct once per run (plans are cached),
/// call [`PmSolver::accelerations`] once per PM step.
#[derive(Debug)]
pub struct PmSolver {
    cfg: PmConfig,
    fft: DistFft3d,
}

impl PmSolver {
    /// Build the solver on this communicator.
    pub fn new(comm: &Comm, cfg: PmConfig) -> Self {
        let fft = DistFft3d::new(comm, cfg.n);
        Self { cfg, fft }
    }

    /// The configuration.
    pub fn config(&self) -> &PmConfig {
        &self.cfg
    }

    /// Deposit this rank's particles and return the local slab of the
    /// *mass* grid (sum of CIC-weighted masses per cell).
    pub fn mass_slab(
        &self,
        comm: &mut Comm,
        positions: &[[f64; 3]],
        masses: &[f64],
    ) -> Vec<f64> {
        cic::deposit(comm, self.cfg.n, self.cfg.box_size, positions, masses)
    }

    /// Long-range accelerations at this rank's particle positions.
    ///
    /// The returned vector is `-∇φ` per particle, with
    /// `∇²φ = prefactor · ρ` solved spectrally (ρ here is *mass per cell
    /// volume*: the deposit is normalized by the cell volume internally so
    /// the prefactor retains its physical meaning).
    pub fn accelerations(
        &self,
        comm: &mut Comm,
        positions: &[[f64; 3]],
        masses: &[f64],
    ) -> Vec<[f64; 3]> {
        let n = self.cfg.n;
        let cell_vol = (self.cfg.box_size / n as f64).powi(3);

        // 1. Deposit, converting mass -> density.
        let mass_grid = self.mass_slab(comm, positions, masses);
        let mut rho: Vec<Complex64> = mass_grid
            .iter()
            .map(|&m| Complex64::new(m / cell_vol, 0.0))
            .collect();

        // 2. Forward FFT into the transposed slab layout.
        self.fft.forward(comm, &mut rho);

        // 3. Green's function + spectral gradient per component.
        let opts = GreensOptions {
            prefactor: self.cfg.prefactor,
            split_scale: self.cfg.split_scale,
            deconvolve_cic: self.cfg.deconvolve_cic,
        };
        let force_k =
            apply_greens_gradient(&rho, n, self.fft.y0, self.fft.ny, self.cfg.box_size, &opts);
        drop(rho);

        // 4. Inverse FFT each component and interpolate at particles.
        let needed = cic::needed_planes(n, self.cfg.box_size, positions);
        let mut accel = vec![[0.0f64; 3]; positions.len()];
        for (d, mut comp) in force_k.into_iter().enumerate() {
            self.fft.inverse(comm, &mut comp);
            let real: Vec<f64> = comp.iter().map(|c| c.re).collect();
            drop(comp);
            let planes = cic::gather_planes(comm, n, &real, &needed);
            let vals = cic::interpolate(n, self.cfg.box_size, positions, &planes);
            for (a, v) in accel.iter_mut().zip(vals) {
                a[d] = v;
            }
        }
        accel
    }

    /// The local k-space density grid (used by the P(k) analysis). Returns
    /// `(delta_k, y0, ny)` where `delta_k` is the FFT of the *overdensity*
    /// `delta = rho/rho_mean - 1`.
    pub fn density_k(
        &self,
        comm: &mut Comm,
        positions: &[[f64; 3]],
        masses: &[f64],
    ) -> (Vec<Complex64>, usize, usize) {
        let n = self.cfg.n;
        let mass_grid = self.mass_slab(comm, positions, masses);
        let local_mass: f64 = mass_grid.iter().sum();
        let total_mass = comm.all_reduce_f64(local_mass, |a, b| a + b);
        let mean_per_cell = total_mass / (n * n * n) as f64;
        let mut delta: Vec<Complex64> = mass_grid
            .iter()
            .map(|&m| Complex64::new(m / mean_per_cell - 1.0, 0.0))
            .collect();
        self.fft.forward(comm, &mut delta);
        (delta, self.fft.y0, self.fft.ny)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poisson::short_range_fraction;
    use hacc_ranks::World;

    /// Point-mass force test: PM long-range + analytic short-range residual
    /// should reconstruct Newton's 1/r² at separations of a few grid cells
    /// and beyond. This validates the separation-of-scales split end to
    /// end — the central algorithmic claim of the solver architecture.
    #[test]
    fn point_mass_force_matches_newton() {
        let n = 32;
        let box_size = 32.0;
        let g = 1.0; // work in G=1 units
        let results = World::run(2, |comm| {
            let cfg = PmConfig::new(n, box_size, 4.0 * std::f64::consts::PI * g);
            let solver = PmSolver::new(comm, cfg);
            // A unit mass at the box center (held by rank 0) and massless
            // test particles along x.
            let center = [16.0, 16.0, 16.0];
            let rs: Vec<f64> = (1..10).map(|i| i as f64).collect();
            let mut pos = vec![center];
            let mut mass = vec![1.0];
            if comm.rank() != 0 {
                pos.clear();
                mass.clear();
            }
            for &r in &rs {
                pos.push([16.0 + r, 16.0, 16.0]);
                mass.push(0.0);
            }
            let acc = solver.accelerations(comm, &pos, &mass);
            let start = pos.len() - rs.len();
            (comm.rank(), rs.clone(), acc[start..].to_vec(), cfg.split_scale)
        });
        for (_rank, rs, acc, split) in results {
            for (i, &r) in rs.iter().enumerate() {
                // Skip radii inside the handover region where the PM force
                // is intentionally soft (tree takes over there).
                if r < 3.0 * split {
                    continue;
                }
                let newton = 1.0 / (r * r);
                let lr = -acc[i][0]; // toward the center (negative x)
                let sr = newton * short_range_fraction(r, split);
                let total = lr + sr;
                let rel = (total - newton).abs() / newton;
                assert!(
                    rel < 0.12,
                    "r={r}: lr={lr:.5} sr={sr:.5} newton={newton:.5} rel={rel:.3}"
                );
                // Transverse components stay small.
                assert!(acc[i][1].abs() < 0.15 * newton);
                assert!(acc[i][2].abs() < 0.15 * newton);
            }
        }
    }

    #[test]
    fn uniform_density_gives_no_force() {
        let n = 16;
        let box_size = 16.0;
        let maxa = World::run(2, |comm| {
            let cfg = PmConfig::new(n, box_size, 1.0);
            let solver = PmSolver::new(comm, cfg);
            // One particle per cell on the exact lattice -> uniform grid.
            let mut pos = Vec::new();
            for x in 0..n {
                for y in 0..n {
                    for z in 0..n {
                        if (x + y + z) % comm.size() == comm.rank() {
                            pos.push([x as f64, y as f64, z as f64]);
                        }
                    }
                }
            }
            let mass = vec![1.0; pos.len()];
            let acc = solver.accelerations(comm, &pos, &mass);
            acc.iter()
                .flat_map(|a| a.iter().map(|v| v.abs()))
                .fold(0.0, f64::max)
        });
        for m in maxa {
            assert!(m < 1e-8, "residual force {m}");
        }
    }

    #[test]
    fn density_k_zero_mode_vanishes() {
        let n = 8;
        World::run(2, |comm| {
            let cfg = PmConfig::new(n, 8.0, 1.0);
            let solver = PmSolver::new(comm, cfg);
            let pos: Vec<[f64; 3]> = (0..20)
                .map(|i| {
                    let v = (i * 7 + comm.rank() * 3) % 8;
                    [v as f64, ((i * 3) % 8) as f64, ((i * 5) % 8) as f64]
                })
                .collect();
            let mass = vec![1.5; pos.len()];
            let (delta_k, y0, _ny) = solver.density_k(comm, &pos, &mass);
            if y0 == 0 {
                // k = 0 element lives at (ly=0, x=0, z=0) on the y0=0 rank.
                assert!(delta_k[0].abs() < 1e-9, "zero mode {:?}", delta_k[0]);
            }
        });
    }

    #[test]
    fn momentum_conservation_two_body() {
        // Equal masses: PM forces must be equal and opposite (discrete
        // translational symmetry of the mesh makes this hold to roundoff
        // when both particles sit on grid points).
        let n = 16;
        let accs = World::run(1, |comm| {
            let cfg = PmConfig::new(n, 16.0, 1.0);
            let solver = PmSolver::new(comm, cfg);
            let pos = vec![[4.0, 8.0, 8.0], [12.0, 8.0, 8.0]];
            let mass = vec![1.0, 1.0];
            solver.accelerations(comm, &pos, &mass)
        });
        let a = &accs[0];
        for d in 0..3 {
            assert!(
                (a[0][d] + a[1][d]).abs() < 1e-9,
                "momentum violation in component {d}"
            );
        }
    }
}
