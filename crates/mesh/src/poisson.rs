//! K-space Poisson solve with spectral filtering, CIC deconvolution, and
//! spectral force gradients — HACC's "spectrally filtered PM" in miniature.
//!
//! Given the Fourier-space mass grid `rho(k)`, the long-range potential is
//!
//! ```text
//! phi(k) = -prefactor * rho(k) / k^2 * S(k) / W_cic(k)^2
//! ```
//!
//! where `S(k) = exp(-k^2 r_s^2)` is the Gaussian long-range filter (the
//! complementary short-range kernel lives in `hacc-grav`) and `W_cic` is
//! the CIC assignment window, deconvolved twice (deposit + interpolation).
//! Force components come from the spectral gradient `F = -i k phi(k)`.

use hacc_swfft::Complex64;

/// Signed wavenumber index for FFT bin `i` of an `n`-grid.
#[inline]
pub fn signed_index(n: usize, i: usize) -> i64 {
    let i = i as i64;
    let n = n as i64;
    if i <= n / 2 {
        i
    } else {
        i - n
    }
}

/// The one-dimensional CIC window `sinc^2(k_d Delta / 2)` for FFT bin `i`.
#[inline]
pub fn cic_window_1d(n: usize, i: usize) -> f64 {
    let m = signed_index(n, i);
    if m == 0 {
        return 1.0;
    }
    let x = std::f64::consts::PI * m as f64 / n as f64;
    let s = x.sin() / x;
    s * s
}

/// Options controlling the spectral solve.
#[derive(Debug, Clone, Copy)]
pub struct GreensOptions {
    /// `4 pi G` or the cosmological Poisson prefactor; the potential is
    /// `phi(k) = -prefactor rho(k)/k^2 ...`.
    pub prefactor: f64,
    /// Gaussian split scale `r_s` in the same length units as the box.
    /// Zero disables filtering (plain PM; used by ablations).
    pub split_scale: f64,
    /// Deconvolve the CIC window twice (deposit and interpolation).
    pub deconvolve_cic: bool,
}

/// Apply the Green's function and spectral gradient to the k-space mass
/// grid (slab layout B of [`hacc_swfft::DistFft3d`]): produces the three
/// force-component grids `F_d(k) = -i k_d phi(k)`.
///
/// `rho_k` is indexed `[(ly * n + x) * n + z]` with `ly` spanning this
/// rank's `ny` y-planes starting at `y0`. `box_size` sets the physical
/// wavenumbers `k_d = 2 pi m_d / L`.
pub fn apply_greens_gradient(
    rho_k: &[Complex64],
    n: usize,
    y0: usize,
    ny: usize,
    box_size: f64,
    opts: &GreensOptions,
) -> [Vec<Complex64>; 3] {
    assert_eq!(rho_k.len(), ny * n * n);
    let two_pi_l = 2.0 * std::f64::consts::PI / box_size;
    let mut fx = vec![Complex64::zero(); rho_k.len()];
    let mut fy = vec![Complex64::zero(); rho_k.len()];
    let mut fz = vec![Complex64::zero(); rho_k.len()];

    for ly in 0..ny {
        let y = y0 + ly;
        let ky = two_pi_l * signed_index(n, y) as f64;
        let wy = cic_window_1d(n, y);
        for x in 0..n {
            let kx = two_pi_l * signed_index(n, x) as f64;
            let wx = cic_window_1d(n, x);
            let row = (ly * n + x) * n;
            for z in 0..n {
                let kz = two_pi_l * signed_index(n, z) as f64;
                let k2 = kx * kx + ky * ky + kz * kz;
                let idx = row + z;
                if k2 == 0.0 {
                    // Zero mode: mean density sources no force (Jeans
                    // swindle / periodic background subtraction).
                    continue;
                }
                let mut g = -opts.prefactor / k2;
                if opts.split_scale > 0.0 {
                    g *= (-k2 * opts.split_scale * opts.split_scale).exp();
                }
                if opts.deconvolve_cic {
                    let w = wx * wy * cic_window_1d(n, z);
                    g /= w * w;
                }
                let phi = rho_k[idx].scale(g);
                // F = -i k phi  =>  multiply by (-i k_d).
                let m_i_phi = Complex64::new(phi.im, -phi.re); // -i * phi
                fx[idx] = m_i_phi.scale(kx);
                fy[idx] = m_i_phi.scale(ky);
                fz[idx] = m_i_phi.scale(kz);
            }
        }
    }
    [fx, fy, fz]
}

/// The isotropic long-range filter in k-space, `S(k) = exp(-k² r_s²)`.
#[inline]
pub fn long_range_filter(k: f64, r_s: f64) -> f64 {
    (-k * k * r_s * r_s).exp()
}

/// The complementary short-range force factor in real space: the fraction
/// of the Newtonian `1/r²` force carried by the short-range side of the
/// Gaussian split,
/// `f_sr(r)/f_newton(r) = erfc(r/(2 r_s)) + r/(r_s sqrt(pi)) exp(-r²/(4 r_s²))`.
#[inline]
pub fn short_range_fraction(r: f64, r_s: f64) -> f64 {
    if r_s <= 0.0 {
        return 0.0;
    }
    let x = r / (2.0 * r_s);
    erfc(x) + (r / (r_s * std::f64::consts::PI.sqrt())) * (-x * x).exp()
}

/// Complementary error function via the Abramowitz–Stegun 7.1.26 rational
/// fit (|error| < 1.5e-7, ample for force splitting).
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    poly * (-x * x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_index_symmetry() {
        assert_eq!(signed_index(8, 0), 0);
        assert_eq!(signed_index(8, 4), 4); // Nyquist kept positive
        assert_eq!(signed_index(8, 5), -3);
        assert_eq!(signed_index(8, 7), -1);
    }

    #[test]
    fn cic_window_bounds() {
        for i in 0..16 {
            let w = cic_window_1d(16, i);
            assert!(w > 0.0 && w <= 1.0);
        }
        assert_eq!(cic_window_1d(16, 0), 1.0);
        // Nyquist: sinc^2(pi/2) = (2/pi)^2.
        let nyq = cic_window_1d(16, 8);
        let expect = (2.0 / std::f64::consts::PI).powi(2);
        assert!((nyq - expect).abs() < 1e-12);
    }

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_7).abs() < 1e-6);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-6);
    }

    #[test]
    fn split_fractions_sum_to_newton() {
        // Long-range + short-range must reconstruct the full force:
        // in real space, 1 - f_sr(r) is the long-range fraction, which for
        // the Gaussian split equals erf(r/2rs) - (r/rs sqrt(pi)) exp(...).
        // Check limits instead: f_sr -> 1 as r -> 0, -> 0 as r -> inf.
        let rs = 1.0;
        assert!((short_range_fraction(1e-6, rs) - 1.0).abs() < 1e-5);
        assert!(short_range_fraction(20.0, rs) < 1e-10);
        // Monotone decreasing.
        let mut prev = 2.0;
        for i in 1..100 {
            let f = short_range_fraction(i as f64 * 0.2, rs);
            assert!(f <= prev + 1e-12);
            prev = f;
        }
    }

    #[test]
    fn zero_mode_produces_no_force() {
        let n = 4;
        let rho = vec![Complex64::one(); n * n * n];
        let opts = GreensOptions {
            prefactor: 1.0,
            split_scale: 0.0,
            deconvolve_cic: false,
        };
        let [fx, _, _] = apply_greens_gradient(&rho, n, 0, n, 1.0, &opts);
        assert_eq!(fx[0], Complex64::zero());
    }

    #[test]
    fn gradient_of_plane_wave() {
        // rho(x) = cos(2 pi x / L) along x: rho(k) has power only at
        // kx = +-1. The resulting force must be along x only, and
        // proportional to sin (phase shift by -i k / k^2 * ... ).
        let n = 8;
        let l = 2.0 * std::f64::consts::PI; // so k1 = 1
        // Build rho(k) for rho(x)=cos(k1 x): delta at (1,0,0) and (n-1,0,0)
        // with amplitude n^3/2 (unnormalized forward FFT convention).
        let mut rho = vec![Complex64::zero(); n * n * n];
        let amp = (n * n * n) as f64 / 2.0;
        // Layout B on one rank is [(y * n + x) * n + z].
        rho[(0 * n + 1) * n] = Complex64::new(amp, 0.0);
        rho[(0 * n + (n - 1)) * n] = Complex64::new(amp, 0.0);
        let opts = GreensOptions {
            prefactor: 1.0,
            split_scale: 0.0,
            deconvolve_cic: false,
        };
        let [fx, fy, fz] = apply_greens_gradient(&rho, n, 0, n, l, &opts);
        // phi(k) = -rho(k)/k^2 -> phi(x) = -cos(x); F = -dphi/dx = -sin(x).
        // In k-space F_x(k=+1) should be -i*k*phi = i * amp ... just verify
        // fy, fz vanish and fx is nonzero and purely imaginary.
        assert!(fy.iter().all(|v| v.abs() < 1e-12));
        assert!(fz.iter().all(|v| v.abs() < 1e-12));
        let v = fx[(0 * n + 1) * n];
        assert!(v.re.abs() < 1e-9 && v.im.abs() > 0.1);
    }
}
