//! Cloud-in-cell (CIC) deposit and interpolation on the distributed slab
//! mesh.
//!
//! Particles live on arbitrary ranks (CRK-HACC's 3-D cuboid decomposition);
//! the FFT mesh is x-slab decomposed. Deposit therefore buckets per-cell
//! mass contributions by destination slab owner and exchanges them with an
//! all-to-all; interpolation gathers the (few) x-planes a rank's particles
//! touch from their owners.

use hacc_ranks::Comm;
use hacc_swfft::dist::slab;

/// Which rank owns global x-plane `ix` under the slab decomposition.
#[inline]
pub fn plane_owner(n: usize, size: usize, ix: usize) -> usize {
    debug_assert!(ix < n);
    let base = n / size;
    let rem = n % size;
    let big = rem * (base + 1);
    if ix < big {
        ix / (base + 1)
    } else {
        rem + (ix - big) / base
    }
}

/// The 8 CIC stencil cells and weights for a position, as
/// `(ix, iy, iz, w)` with periodic wrapping on an `n³` mesh.
#[inline]
pub fn cic_stencil(n: usize, box_size: f64, pos: &[f64; 3]) -> [(usize, usize, usize, f64); 8] {
    let scale = n as f64 / box_size;
    let mut i0 = [0usize; 3];
    let mut frac = [0f64; 3];
    for d in 0..3 {
        // Cell-centered CIC: the deposit point in grid coordinates.
        let g = (pos[d] * scale).rem_euclid(n as f64);
        let f = g.floor();
        i0[d] = (f as usize) % n;
        frac[d] = g - f;
    }
    let i1 = [(i0[0] + 1) % n, (i0[1] + 1) % n, (i0[2] + 1) % n];
    let w0 = [1.0 - frac[0], 1.0 - frac[1], 1.0 - frac[2]];
    let w1 = frac;
    [
        (i0[0], i0[1], i0[2], w0[0] * w0[1] * w0[2]),
        (i1[0], i0[1], i0[2], w1[0] * w0[1] * w0[2]),
        (i0[0], i1[1], i0[2], w0[0] * w1[1] * w0[2]),
        (i1[0], i1[1], i0[2], w1[0] * w1[1] * w0[2]),
        (i0[0], i0[1], i1[2], w0[0] * w0[1] * w1[2]),
        (i1[0], i0[1], i1[2], w1[0] * w0[1] * w1[2]),
        (i0[0], i1[1], i1[2], w0[0] * w1[1] * w1[2]),
        (i1[0], i1[1], i1[2], w1[0] * w1[1] * w1[2]),
    ]
}

/// Deposit particle masses onto the distributed mesh. Returns this rank's
/// x-slab of the *mass* grid (convert to density/overdensity downstream).
///
/// `positions` are global coordinates in `[0, box_size)³`; any rank may
/// hold particles anywhere (contributions are routed to slab owners).
pub fn deposit(
    comm: &mut Comm,
    n: usize,
    box_size: f64,
    positions: &[[f64; 3]],
    masses: &[f64],
) -> Vec<f64> {
    assert_eq!(positions.len(), masses.len());
    let size = comm.size();
    let mut sends: Vec<Vec<(u64, f64)>> = vec![Vec::new(); size];
    for (p, &m) in positions.iter().zip(masses) {
        for (ix, iy, iz, w) in cic_stencil(n, box_size, p) {
            let owner = plane_owner(n, size, ix);
            let idx = ((ix * n + iy) * n + iz) as u64;
            sends[owner].push((idx, m * w));
        }
    }
    let recvd = comm.all_to_allv(sends);
    let (x0, nx) = slab(n, size, comm.rank());
    let mut grid = vec![0.0f64; nx * n * n];
    let base = (x0 * n * n) as u64;
    for buf in recvd {
        for (idx, v) in buf {
            grid[(idx - base) as usize] += v;
        }
    }
    grid
}

/// Gather the x-planes listed in `needed` (global plane indices) from their
/// owning ranks. Returns `(plane_index, plane_data)` pairs; each plane is
/// `n²` values.
pub fn gather_planes(
    comm: &mut Comm,
    n: usize,
    local_slab: &[f64],
    needed: &[usize],
) -> Vec<(usize, Vec<f64>)> {
    let size = comm.size();
    let rank = comm.rank();
    let (x0, _nx) = slab(n, size, rank);

    // Round 1: send plane requests to owners.
    let mut requests: Vec<Vec<usize>> = vec![Vec::new(); size];
    for &ix in needed {
        assert!(ix < n, "plane index out of range");
        requests[plane_owner(n, size, ix)].push(ix);
    }
    let incoming = comm.all_to_allv(requests.clone());

    // Round 2: answer with the plane data, concatenated in request order.
    let mut responses: Vec<Vec<f64>> = Vec::with_capacity(size);
    for reqs in &incoming {
        let mut buf = Vec::with_capacity(reqs.len() * n * n);
        for &ix in reqs {
            let lx = ix - x0;
            buf.extend_from_slice(&local_slab[lx * n * n..(lx + 1) * n * n]);
        }
        responses.push(buf);
    }
    let answers = comm.all_to_allv(responses);

    // Reassemble in the order we asked each owner.
    let mut out = Vec::with_capacity(needed.len());
    for (owner, reqs) in requests.iter().enumerate() {
        let buf = &answers[owner];
        for (i, &ix) in reqs.iter().enumerate() {
            out.push((ix, buf[i * n * n..(i + 1) * n * n].to_vec()));
        }
    }
    out
}

/// The set of global x-planes the CIC stencils of `positions` touch.
pub fn needed_planes(n: usize, box_size: f64, positions: &[[f64; 3]]) -> Vec<usize> {
    let mut mask = vec![false; n];
    let scale = n as f64 / box_size;
    for p in positions {
        let g = (p[0] * scale).rem_euclid(n as f64);
        let i0 = (g.floor() as usize) % n;
        mask[i0] = true;
        mask[(i0 + 1) % n] = true;
    }
    mask.iter()
        .enumerate()
        .filter_map(|(i, &m)| m.then_some(i))
        .collect()
}

/// Interpolate a grid quantity at particle positions using planes gathered
/// by [`gather_planes`]. `planes` maps global plane index → `n²` data.
pub fn interpolate(
    n: usize,
    box_size: f64,
    positions: &[[f64; 3]],
    planes: &[(usize, Vec<f64>)],
) -> Vec<f64> {
    // Dense lookup: plane index -> slot.
    let mut lut: Vec<Option<&Vec<f64>>> = vec![None; n];
    for (ix, data) in planes {
        lut[*ix] = Some(data);
    }
    positions
        .iter()
        .map(|p| {
            let mut v = 0.0;
            for (ix, iy, iz, w) in cic_stencil(n, box_size, p) {
                let plane = lut[ix].unwrap_or_else(|| panic!("missing plane {ix}"));
                v += w * plane[iy * n + iz];
            }
            v
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hacc_ranks::World;
    use hacc_rt::rand::{self, Rng, SeedableRng};

    #[test]
    fn plane_owner_matches_slab() {
        for n in [8usize, 13, 16] {
            for size in 1..=n.min(6) {
                for r in 0..size {
                    let (off, cnt) = slab(n, size, r);
                    for ix in off..off + cnt {
                        assert_eq!(plane_owner(n, size, ix), r, "n={n} size={size}");
                    }
                }
            }
        }
    }

    #[test]
    fn stencil_weights_sum_to_one() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let p = [
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..100.0),
                rng.gen_range(0.0..100.0),
            ];
            let s = cic_stencil(16, 100.0, &p);
            let total: f64 = s.iter().map(|e| e.3).sum();
            assert!((total - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn deposit_conserves_mass() {
        let n = 8;
        let total: f64 = World::run(3, |comm| {
            let mut rng =
                rand::rngs::StdRng::seed_from_u64(comm.rank() as u64);
            let pos: Vec<[f64; 3]> = (0..50)
                .map(|_| {
                    [
                        rng.gen_range(0.0..50.0),
                        rng.gen_range(0.0..50.0),
                        rng.gen_range(0.0..50.0),
                    ]
                })
                .collect();
            let mass = vec![2.0; 50];
            let grid = deposit(comm, n, 50.0, &pos, &mass);
            let local: f64 = grid.iter().sum();
            comm.all_reduce_f64(local, |a, b| a + b)
        })
        .into_iter()
        .next()
        .unwrap();
        assert!((total - 3.0 * 50.0 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn grid_point_particle_deposits_to_single_cell() {
        let n = 8;
        let grids = World::run(2, |comm| {
            let pos = if comm.rank() == 0 {
                vec![[2.0 * 10.0 / 8.0, 3.0 * 10.0 / 8.0, 4.0 * 10.0 / 8.0]]
            } else {
                vec![]
            };
            let mass = vec![5.0; pos.len()];
            deposit(comm, n, 10.0, &pos, &mass)
        });
        // Particle sits exactly on grid point (2,3,4).
        let mut found = 0;
        for (r, g) in grids.iter().enumerate() {
            let (x0, nx) = slab(n, 2, r);
            for lx in 0..nx {
                for y in 0..n {
                    for z in 0..n {
                        let v = g[(lx * n + y) * n + z];
                        if v != 0.0 {
                            assert_eq!((x0 + lx, y, z), (2, 3, 4));
                            assert!((v - 5.0).abs() < 1e-12);
                            found += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(found, 1);
    }

    #[test]
    fn interpolate_recovers_linear_field() {
        // CIC interpolation is exact for fields linear in each coordinate.
        let n = 8;
        let box_size = 8.0; // unit cells
        World::run(2, |comm| {
            let size = comm.size();
            let (x0, nx) = slab(n, size, comm.rank());
            // f(x,y,z) = y (periodic linearity holds away from the wrap).
            let mut local = vec![0.0; nx * n * n];
            for lx in 0..nx {
                for y in 0..n {
                    for z in 0..n {
                        local[(lx * n + y) * n + z] = y as f64;
                    }
                }
            }
            let pos = vec![[2.3, 3.25, 1.7], [5.9, 0.5, 6.1]];
            let planes = {
                let needed = needed_planes(n, box_size, &pos);
                gather_planes(comm, n, &local, &needed)
            };
            let vals = interpolate(n, box_size, &pos, &planes);
            assert!((vals[0] - 3.25).abs() < 1e-12, "got {}", vals[0]);
            assert!((vals[1] - 0.5).abs() < 1e-12, "got {}", vals[1]);
            let _ = x0;
        });
    }

    #[test]
    fn gather_planes_wrapping_range() {
        let n = 8;
        World::run(4, |comm| {
            let (x0, nx) = slab(n, comm.size(), comm.rank());
            let mut local = vec![0.0; nx * n * n];
            for lx in 0..nx {
                for i in 0..n * n {
                    local[lx * n * n + i] = (x0 + lx) as f64;
                }
            }
            // Every rank asks for the wrap pair {n-1, 0}.
            let planes = gather_planes(comm, n, &local, &[n - 1, 0]);
            assert_eq!(planes.len(), 2);
            for (ix, data) in planes {
                assert!(data.iter().all(|&v| v == ix as f64));
            }
        });
    }
}
