//! `hacc-mesh` — the long-range (particle-mesh) gravity solver.
//!
//! CRK-HACC computes gravity with a separation-of-scales approach: the
//! smooth long-range field comes from a spectrally filtered particle-mesh
//! (PM) solve on a global FFT mesh in FP64, and the residual short-range
//! force is evaluated by the tree/particle kernels (see `hacc-grav`). This
//! crate implements the PM half:
//!
//! * [`cic`] — cloud-in-cell deposit and interpolation with the
//!   rank-distributed scatter/gather exchanges,
//! * [`poisson`] — the k-space Green's function with Gaussian long-range
//!   filtering and CIC deconvolution, plus spectral force gradients,
//! * [`pm`] — the [`pm::PmSolver`] orchestrating
//!   deposit → FFT → Green × ik → inverse FFT → interpolation.
//!
//! The split is the Ewald-style Gaussian pair: the PM force is filtered by
//! `exp(-k² r_s²)`, and `hacc-grav` supplies the complementary real-space
//! kernel `erfc(r/2r_s) + (r/(r_s √π)) exp(-r²/4r_s²)` so that
//! PM + short-range ≈ Newton on all resolved scales.

pub mod cic;
pub mod pm;
pub mod poisson;

pub use pm::{PmConfig, PmSolver};
