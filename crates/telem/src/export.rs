//! Exporters: Chrome-trace JSON and the per-rank/per-phase text report.
//!
//! The Chrome trace (`chrome://tracing` / Perfetto "trace event" format)
//! is golden in its entirety: timestamps are the tracer's logical
//! sequence numbers, one lane (`tid`) per rank. The text report carries a
//! golden region delimited by [`GOLDEN_BEGIN`]/[`GOLDEN_END`] followed by
//! a non-golden wall-clock appendix. Regression tests and the
//! `scripts/verify.sh` lint compare golden regions byte-for-byte.

use crate::counters::{
    CommCounters, FaultCounters, GpuKernelRow, IoCounters, COLLECTIVE_KINDS, FAULT_KINDS,
};
use crate::ledger::ConservationLedger;
use crate::span::Span;
use std::fmt::Write as _;

/// First line of the golden region of a text report.
pub const GOLDEN_BEGIN: &str = "# === GOLDEN BEGIN ===";
/// Last line of the golden region of a text report.
pub const GOLDEN_END: &str = "# === GOLDEN END ===";

/// One rank's telemetry bundle.
#[derive(Debug, Clone)]
pub struct RankTelemetry {
    /// Rank index.
    pub rank: usize,
    /// Span records, in open order.
    pub spans: Vec<Span>,
    /// Communication counters.
    pub comm: CommCounters,
    /// Tiered-I/O counters.
    pub io: IoCounters,
    /// Fault-injection counters (all zero unless the chaos harness was
    /// armed; accumulated across supervisor attempts).
    pub faults: FaultCounters,
}

/// The assembled whole-run telemetry (all ranks).
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Per-rank bundles, in rank order.
    pub ranks: Vec<RankTelemetry>,
    /// Per-kernel GPU rows, merged across ranks, in name order.
    pub gpu: Vec<GpuKernelRow>,
    /// The conservation ledger (globally reduced; identical on every
    /// rank).
    pub ledger: ConservationLedger,
    /// Per-phase wall seconds summed over ranks — **non-golden**.
    pub wall_phases: Vec<(String, f64)>,
    /// Supervisor attempts the run took (1 = no fault required a
    /// restart). Golden: the attempt sequence is seed-deterministic.
    pub attempts: u64,
    /// Rollbacks to a valid checkpoint the supervisor performed.
    pub rollbacks: u64,
    /// Sanitizer summary lines (empty unless the run was sanitized).
    /// Golden: hacc-san's checks are deterministic for a fixed seed, so
    /// the summary is byte-identical run to run.
    pub sanitizer: Vec<String>,
}

/// Escape a string for a JSON literal (names are ASCII identifiers, but
/// be safe).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl TelemetryReport {
    /// Render the Chrome "trace event" JSON. Fully golden: `ts`/`dur`
    /// are logical sequence numbers, `tid` is the rank.
    pub fn chrome_trace(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        for rt in &self.ranks {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"name\":\"rank {}\"}}}}",
                rt.rank, rt.rank
            ));
            for s in &rt.spans {
                let dur = s.seq_close.saturating_sub(s.seq_open);
                events.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\
                     \"dur\":{},\"pid\":0,\"tid\":{},\"args\":{{\"step\":{},\
                     \"depth\":{}}}}}",
                    json_escape(&s.name),
                    json_escape(s.phase),
                    s.seq_open,
                    dur,
                    rt.rank,
                    s.step,
                    s.depth
                ));
            }
        }
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        out.push_str(&events.join(",\n"));
        out.push_str("\n]}\n");
        out
    }

    /// Render the plain-text per-rank/per-phase report: golden counters,
    /// ledger, and span tree first, then the non-golden wall-clock
    /// appendix.
    pub fn text_report(&self) -> String {
        let mut o = String::new();
        let w = &mut o;
        let _ = writeln!(w, "# frontier-sim telemetry report");
        let _ = writeln!(
            w,
            "# the golden region below is byte-identical across same-seed runs"
        );
        let _ = writeln!(w, "{GOLDEN_BEGIN}");
        let _ = writeln!(w, "[meta]");
        let _ = writeln!(w, "ranks = {}", self.ranks.len());
        let _ = writeln!(w, "ledger_steps = {}", self.ledger.len());
        let _ = writeln!(w, "attempts = {}", self.attempts);
        let _ = writeln!(w, "rollbacks = {}", self.rollbacks);
        for line in &self.sanitizer {
            let _ = writeln!(w, "{line}");
        }
        let _ = writeln!(w);

        let _ = writeln!(
            w,
            "[ledger] step count mass px py pz p_scale kinetic internal"
        );
        for r in self.ledger.records() {
            let _ = writeln!(
                w,
                "{} {} {:.12e} {:.12e} {:.12e} {:.12e} {:.12e} {:.12e} {:.12e}",
                r.step,
                r.count,
                r.mass,
                r.momentum[0],
                r.momentum[1],
                r.momentum[2],
                r.momentum_scale,
                r.kinetic,
                r.internal
            );
        }
        let _ = writeln!(w);

        for rt in &self.ranks {
            let _ = writeln!(w, "[comm rank {}]", rt.rank);
            let _ = writeln!(w, "sends = {}", rt.comm.sends);
            let _ = writeln!(w, "recvs = {}", rt.comm.recvs);
            let _ = writeln!(w, "bytes_sent = {}", rt.comm.bytes_sent);
            for k in COLLECTIVE_KINDS {
                let _ = writeln!(w, "{} = {}", k.name(), rt.comm.collective(k));
            }
            let _ = writeln!(w);
        }

        for rt in &self.ranks {
            let _ = writeln!(w, "[io rank {}]", rt.rank);
            let _ = writeln!(w, "nvme_bytes = {}", rt.io.nvme_bytes);
            let _ = writeln!(w, "pfs_bytes = {}", rt.io.pfs_bytes);
            let _ = writeln!(w, "nvme_writes = {}", rt.io.nvme_writes);
            let _ = writeln!(w, "files_bled = {}", rt.io.files_bled);
            let _ = writeln!(w, "files_pruned = {}", rt.io.files_pruned);
            let _ = writeln!(w, "stalls = {}", rt.io.stalls);
            let _ = writeln!(w, "faults = {}", rt.io.faults);
            let _ = writeln!(w);
        }

        for rt in &self.ranks {
            let _ = writeln!(w, "[faults rank {}] kind injected recovered", rt.rank);
            for k in FAULT_KINDS {
                let _ = writeln!(
                    w,
                    "{} {} {}",
                    k.name(),
                    rt.faults.injected(k),
                    rt.faults.recovered(k)
                );
            }
            let _ = writeln!(w);
        }

        let _ = writeln!(w, "[gpu kernels] name launches flops bytes pairs");
        for g in &self.gpu {
            let _ = writeln!(
                w,
                "{} {} {} {} {}",
                g.name, g.launches, g.flops, g.bytes, g.pairs
            );
        }
        let _ = writeln!(w);

        for rt in &self.ranks {
            let _ = writeln!(w, "[spans rank {}] seq_open..seq_close name (phase)", rt.rank);
            for s in &rt.spans {
                let _ = writeln!(
                    w,
                    "{:indent$}{}..{} {} ({})",
                    "",
                    s.seq_open,
                    s.seq_close,
                    s.name,
                    s.phase,
                    indent = 2 * (s.depth as usize + 1)
                );
            }
            let _ = writeln!(w);
        }
        let _ = writeln!(w, "{GOLDEN_END}");

        let _ = writeln!(w);
        let _ = writeln!(w, "# non-golden appendix: wall-clock seconds (vary run to run)");
        let _ = writeln!(w, "[wall-clock phases, summed over ranks]");
        for (name, s) in &self.wall_phases {
            let _ = writeln!(w, "{name} = {s:.6}s");
        }
        o
    }
}

/// Extract the golden region (inclusive of its markers) from a text
/// report. Panics if the markers are missing or out of order — a report
/// without a golden region is malformed.
pub fn golden_section(report: &str) -> &str {
    let begin = report
        .find(GOLDEN_BEGIN)
        .expect("report missing GOLDEN BEGIN marker");
    let end = report
        .find(GOLDEN_END)
        .expect("report missing GOLDEN END marker");
    assert!(begin < end, "golden markers out of order");
    &report[begin..end + GOLDEN_END.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::LedgerRecord;
    use crate::span::Tracer;

    fn sample_report(sleep: bool) -> TelemetryReport {
        let mut tr = Tracer::new(0);
        tr.set_step(0);
        let a = tr.begin("misc", "migrate");
        if sleep {
            std::thread::sleep(std::time::Duration::from_millis(3));
        }
        tr.end(a);
        let (_, _) = tr.scope("io", "checkpoint", || ());
        let mut comm = CommCounters::default();
        comm.record_send(64);
        comm.record_collective(crate::CollectiveKind::AllReduce);
        let mut ledger = ConservationLedger::new();
        ledger.push(LedgerRecord {
            step: 0,
            count: 512,
            mass: 1.5e12,
            momentum: [0.25, -0.5, 0.125],
            momentum_scale: 3.0e4,
            kinetic: 7.5e3,
            internal: 1.25e2,
        });
        TelemetryReport {
            ranks: vec![RankTelemetry {
                rank: 0,
                spans: tr.into_spans(),
                comm,
                io: IoCounters::default(),
                faults: {
                    let mut f = FaultCounters::default();
                    f.record_injected(crate::FaultKind::CommDup);
                    f.record_recovered(crate::FaultKind::CommDup);
                    f
                },
            }],
            gpu: vec![GpuKernelRow {
                name: "crk_force".into(),
                launches: 4,
                flops: 1000,
                bytes: 512,
                pairs: 99,
            }],
            ledger,
            wall_phases: vec![("misc".into(), if sleep { 0.5 } else { 0.25 })],
            attempts: 1,
            rollbacks: 0,
            sanitizer: Vec::new(),
        }
    }

    #[test]
    fn fault_rows_render_in_golden_region() {
        let txt = sample_report(false).text_report();
        let golden = golden_section(&txt);
        assert!(golden.contains("[faults rank 0] kind injected recovered"));
        assert!(golden.contains("comm_dup 1 1"));
        assert!(golden.contains("rank_panic 0 0"));
        assert!(golden.contains("attempts = 1"));
        assert!(golden.contains("rollbacks = 0"));
    }

    #[test]
    fn golden_region_is_wall_clock_invariant() {
        let a = sample_report(false).text_report();
        let b = sample_report(true).text_report();
        assert_ne!(a, b, "wall appendix should differ");
        assert_eq!(golden_section(&a), golden_section(&b));
    }

    #[test]
    fn golden_region_mentions_no_wall_clock() {
        let txt = sample_report(true).text_report();
        let golden = golden_section(&txt);
        assert!(!golden.to_lowercase().contains("wall"));
        // The appendix does.
        assert!(txt.to_lowercase().contains("wall-clock"));
    }

    #[test]
    fn chrome_trace_is_deterministic_and_structured() {
        let a = sample_report(false).chrome_trace();
        let b = sample_report(true).chrome_trace();
        assert_eq!(a, b, "chrome trace must be fully golden");
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\"ph\":\"X\""));
        assert!(a.contains("\"name\":\"migrate\""));
        assert!(!a.contains("wall"));
        // Balanced braces/brackets as a cheap well-formedness check.
        let opens = a.matches('{').count();
        let closes = a.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn ledger_rows_render_full_precision() {
        let txt = sample_report(false).text_report();
        assert!(txt.contains("1.500000000000e12"));
        assert!(txt.contains("512"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\tend"), "tab\\u0009end");
    }
}
