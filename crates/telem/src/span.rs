//! Nested span tracing on a logical clock.
//!
//! A [`Tracer`] records begin/end events for named spans. Ordering is
//! captured by a monotonically increasing *sequence number* — the logical
//! clock — so two runs of the same simulation produce identical span
//! records even though their wall clocks differ. Wall durations are still
//! measured (they feed the non-golden section of the text report and the
//! phase timers), but they live in a separate field that exporters keep
//! out of golden artifacts.
//!
//! Spans nest: a span opened while another is open becomes its child.
//! Each record carries its depth and parent, and closing a span returns
//! its wall duration so callers can attribute time to exactly one
//! accounting bucket (see `hacc_core::timers` for the self-time rule).

use std::time::Instant;

/// Handle to an open span (index into the tracer's span table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// One completed (or still-open) span record.
#[derive(Debug, Clone)]
pub struct Span {
    /// Span name (e.g. `"long-range"`, `"step-3"`).
    pub name: String,
    /// Phase/category tag (e.g. `"misc"`, `"io"`); groups spans in
    /// exports.
    pub phase: &'static str,
    /// PM step the span was opened in.
    pub step: u64,
    /// Nesting depth (0 = top level).
    pub depth: u32,
    /// Parent span index, if nested.
    pub parent: Option<usize>,
    /// Logical open time (sequence number).
    pub seq_open: u64,
    /// Logical close time; `u64::MAX` while open.
    pub seq_close: u64,
    /// Wall duration, seconds — **non-golden**; exporters must keep this
    /// out of golden sections.
    pub wall_s: f64,
}

/// Per-rank span recorder.
#[derive(Debug)]
pub struct Tracer {
    rank: usize,
    step: u64,
    seq: u64,
    spans: Vec<Span>,
    stack: Vec<(usize, Instant)>,
}

impl Tracer {
    /// Fresh tracer for one rank.
    pub fn new(rank: usize) -> Self {
        Self {
            rank,
            step: 0,
            seq: 0,
            spans: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// The rank this tracer records for.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Set the current PM step (stamped on subsequently opened spans).
    pub fn set_step(&mut self, step: u64) {
        self.step = step;
    }

    fn tick(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Open a span; it becomes a child of the innermost open span.
    pub fn begin(&mut self, phase: &'static str, name: &str) -> SpanId {
        let seq = self.tick();
        let parent = self.stack.last().map(|&(i, _)| i);
        let depth = self.stack.len() as u32;
        self.spans.push(Span {
            name: name.to_string(),
            phase,
            step: self.step,
            depth,
            parent,
            seq_open: seq,
            seq_close: u64::MAX,
            wall_s: 0.0,
        });
        let idx = self.spans.len() - 1;
        self.stack.push((idx, Instant::now()));
        SpanId(idx)
    }

    /// Close a span, returning its wall duration in seconds. Spans must
    /// close in LIFO order (asserted): this is what guarantees the
    /// logical intervals nest properly.
    pub fn end(&mut self, id: SpanId) -> f64 {
        let (idx, t0) = self
            .stack
            .pop()
            .expect("Tracer::end with no open span");
        assert_eq!(idx, id.0, "spans must close in LIFO order");
        let wall = t0.elapsed().as_secs_f64();
        let seq = self.tick();
        let s = &mut self.spans[idx];
        s.seq_close = seq;
        s.wall_s = wall;
        wall
    }

    /// Run `f` inside a span; returns `f`'s value and the wall seconds.
    pub fn scope<T>(
        &mut self,
        phase: &'static str,
        name: &str,
        f: impl FnOnce() -> T,
    ) -> (T, f64) {
        let id = self.begin(phase, name);
        let out = f();
        let wall = self.end(id);
        (out, wall)
    }

    /// Completed + open span records, in open order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Consume the tracer, yielding its span records.
    pub fn into_spans(self) -> Vec<Span> {
        assert!(
            self.stack.is_empty(),
            "tracer finished with {} span(s) still open",
            self.stack.len()
        );
        self.spans
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_with_parents_and_depth() {
        let mut t = Tracer::new(0);
        let a = t.begin("misc", "outer");
        let b = t.begin("io", "inner");
        t.end(b);
        t.end(a);
        let s = t.into_spans();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].depth, 0);
        assert_eq!(s[0].parent, None);
        assert_eq!(s[1].depth, 1);
        assert_eq!(s[1].parent, Some(0));
        // Logical intervals nest strictly: open(a) < open(b) < close(b)
        // < close(a).
        assert!(s[0].seq_open < s[1].seq_open);
        assert!(s[1].seq_open < s[1].seq_close);
        assert!(s[1].seq_close < s[0].seq_close);
    }

    #[test]
    #[should_panic(expected = "LIFO")]
    fn non_lifo_close_is_rejected() {
        let mut t = Tracer::new(0);
        let a = t.begin("misc", "outer");
        let _b = t.begin("misc", "inner");
        t.end(a);
    }

    #[test]
    fn scope_returns_value_and_wall() {
        let mut t = Tracer::new(1);
        let (v, wall) = t.scope("analysis", "compute", || 7);
        assert_eq!(v, 7);
        assert!(wall >= 0.0);
        assert_eq!(t.spans().len(), 1);
    }

    #[test]
    fn logical_clock_is_wall_free() {
        // Two tracers running the same logical sequence produce identical
        // golden fields regardless of elapsed wall time.
        let run = |sleep: bool| {
            let mut t = Tracer::new(0);
            t.set_step(3);
            let a = t.begin("short-range", "kick");
            if sleep {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            t.end(a);
            t.into_spans()
        };
        let (x, y) = (run(false), run(true));
        assert_eq!(x.len(), y.len());
        for (a, b) in x.iter().zip(&y) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.step, b.step);
            assert_eq!((a.seq_open, a.seq_close), (b.seq_open, b.seq_close));
        }
    }
}
