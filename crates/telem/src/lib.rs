//! `hacc-telem` — the unified observability subsystem.
//!
//! The paper's headline evidence is instrumentation: the Fig. 2/Fig. 5
//! phase breakdowns, rocprof-style per-kernel profiles, and tiered-I/O
//! bandwidth accounting at 9,000 nodes. This crate is the measurement
//! substrate those figures need, with one extra constraint that real
//! rocprof output does not have: **determinism**. Every exported golden
//! artifact is byte-identical across repeated same-seed runs, which makes
//! telemetry usable as a *test oracle* — the conservation ledger and
//! counter snapshots are the assertion surface of the regression tier.
//!
//! Pieces:
//!
//! * [`span`] — nested span tracing on a logical clock (sequence numbers,
//!   not wall time), with wall durations carried separately as non-golden
//!   annotations;
//! * [`counters`] — the counter taxonomy: per-rank communication counters
//!   ([`CommCounters`]: messages, bytes, collective calls per kind),
//!   per-tier I/O counters ([`IoCounters`]), and per-kernel GPU rows
//!   ([`GpuKernelRow`]: launches, FLOPs, bytes, pairs);
//! * [`ledger`] — the per-step conservation ledger (particle count, mass,
//!   momentum, kinetic + internal energy), reduced across ranks;
//! * [`export`] — the Chrome-trace JSON exporter and the plain-text
//!   per-rank/per-phase report with explicitly delimited golden sections.
//!
//! # Determinism contract
//!
//! A *golden* artifact may depend only on the simulation's logical
//! execution: step indices, span open/close order, counter values, and
//! physics state. It must never contain wall-clock readings, process ids,
//! pointers, or host paths. The Chrome trace is golden in its entirety
//! (timestamps are logical sequence numbers). The text report separates a
//! golden region, delimited by [`export::GOLDEN_BEGIN`] /
//! [`export::GOLDEN_END`], from a trailing non-golden wall-clock section.
//! `scripts/verify.sh` lints both properties.

pub mod counters;
pub mod export;
pub mod ledger;
pub mod span;

pub use counters::{
    CollectiveKind, CommCounters, FaultCounters, FaultKind, GpuKernelRow, IoCounters,
    COLLECTIVE_KINDS, FAULT_KINDS,
};
pub use export::{golden_section, RankTelemetry, TelemetryReport, GOLDEN_BEGIN, GOLDEN_END};
pub use ledger::{ConservationLedger, LedgerRecord};
pub use span::{Span, SpanId, Tracer};
