//! The per-step conservation ledger.
//!
//! Once per PM step the driver reduces the global particle count, mass,
//! momentum, and kinetic + internal energy across ranks (in rank order,
//! so the sums are deterministic) and appends one [`LedgerRecord`]. The
//! ledger is the physics assertion surface of the test tier: particle
//! count must be *exactly* conserved through overload exchange and
//! migration; mass, momentum, and energy drifts must stay within the
//! documented bounds (see `tests/hydro_physics.rs`).
//!
//! Velocities here are the code's momentum variable `p = a² dx/dτ`, so
//! "kinetic" is `Σ ½ m |p|²` — a conserved-form diagnostic, not a
//! physical energy in erg. What matters for the oracle is that the same
//! functional is tracked every step.

/// One step's globally reduced conservation snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LedgerRecord {
    /// PM step index.
    pub step: u64,
    /// Global particle count (owned particles only; ghosts excluded).
    pub count: u64,
    /// Total mass, M_sun/h.
    pub mass: f64,
    /// Net momentum `Σ m p`, per component.
    pub momentum: [f64; 3],
    /// Gross momentum scale `Σ m |p|` (denominator for drift ratios).
    pub momentum_scale: f64,
    /// Kinetic sum `Σ ½ m |p|²`.
    pub kinetic: f64,
    /// Internal-energy sum `Σ m u`.
    pub internal: f64,
}

impl LedgerRecord {
    /// Kinetic + internal total.
    pub fn total_energy(&self) -> f64 {
        self.kinetic + self.internal
    }

    /// Net momentum magnitude.
    pub fn momentum_norm(&self) -> f64 {
        self.momentum.iter().map(|p| p * p).sum::<f64>().sqrt()
    }
}

/// The per-run sequence of ledger records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConservationLedger {
    records: Vec<LedgerRecord>,
}

impl ConservationLedger {
    /// Empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one step's record.
    pub fn push(&mut self, r: LedgerRecord) {
        self.records.push(r);
    }

    /// All records, in step order.
    pub fn records(&self) -> &[LedgerRecord] {
        &self.records
    }

    /// True when no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Is the particle count identical in every record?
    pub fn count_conserved(&self) -> bool {
        self.records
            .windows(2)
            .all(|w| w[0].count == w[1].count)
    }

    /// Relative mass drift `|m_end − m_0| / m_0` (zero when empty).
    pub fn mass_drift(&self) -> f64 {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => (b.mass - a.mass).abs() / a.mass.abs().max(1e-300),
            _ => 0.0,
        }
    }

    /// Relative total-energy drift between the first and last record,
    /// normalized by the larger magnitude.
    pub fn energy_drift(&self) -> f64 {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => {
                let (e0, e1) = (a.total_energy(), b.total_energy());
                (e1 - e0).abs() / e0.abs().max(e1.abs()).max(1e-300)
            }
            _ => 0.0,
        }
    }

    /// Worst net-momentum fraction `|Σ m p| / Σ m |p|` over all steps —
    /// the conservation diagnostic (ICs have exactly zero net momentum).
    pub fn max_momentum_fraction(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.momentum_norm() / r.momentum_scale.max(1e-300))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(step: u64, count: u64, mass: f64, ke: f64, ie: f64) -> LedgerRecord {
        LedgerRecord {
            step,
            count,
            mass,
            momentum: [1.0, -2.0, 2.0],
            momentum_scale: 100.0,
            kinetic: ke,
            internal: ie,
        }
    }

    #[test]
    fn count_conservation_detected() {
        let mut l = ConservationLedger::new();
        l.push(rec(0, 10, 5.0, 1.0, 1.0));
        l.push(rec(1, 10, 5.0, 1.1, 0.9));
        assert!(l.count_conserved());
        l.push(rec(2, 9, 5.0, 1.1, 0.9));
        assert!(!l.count_conserved());
    }

    #[test]
    fn drifts_are_relative() {
        let mut l = ConservationLedger::new();
        l.push(rec(0, 10, 5.0, 2.0, 2.0));
        l.push(rec(1, 10, 5.0, 2.2, 2.2));
        assert!(l.mass_drift() < 1e-15);
        assert!((l.energy_drift() - 0.4 / 4.4).abs() < 1e-12);
        // |(1,-2,2)| = 3 over scale 100.
        assert!((l.max_momentum_fraction() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn empty_ledger_is_quiet() {
        let l = ConservationLedger::new();
        assert!(l.is_empty());
        assert!(l.count_conserved());
        assert_eq!(l.energy_drift(), 0.0);
        assert_eq!(l.max_momentum_fraction(), 0.0);
    }
}
