//! The counter taxonomy: communication, I/O tiers, and GPU kernels.
//!
//! All counters are integers incremented on logical events, so their
//! values are deterministic for a fixed simulation — they belong in
//! golden artifacts and can be asserted on by regression tests.

/// The collective operations `hacc_ranks::Comm` implements, in report
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum CollectiveKind {
    /// Dissemination barrier.
    Barrier = 0,
    /// One-to-all broadcast.
    Broadcast = 1,
    /// All-to-one gather.
    Gather = 2,
    /// All-to-all gather.
    AllGather = 3,
    /// Rank-ordered reduction to every rank.
    AllReduce = 4,
    /// Exclusive prefix sum.
    Exscan = 5,
    /// Variable-count all-to-all exchange.
    AllToAllV = 6,
}

/// Every collective kind, for iteration.
pub const COLLECTIVE_KINDS: [CollectiveKind; 7] = [
    CollectiveKind::Barrier,
    CollectiveKind::Broadcast,
    CollectiveKind::Gather,
    CollectiveKind::AllGather,
    CollectiveKind::AllReduce,
    CollectiveKind::Exscan,
    CollectiveKind::AllToAllV,
];

impl CollectiveKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::Gather => "gather",
            CollectiveKind::AllGather => "all_gather",
            CollectiveKind::AllReduce => "all_reduce",
            CollectiveKind::Exscan => "exscan",
            CollectiveKind::AllToAllV => "all_to_allv",
        }
    }
}

/// Per-rank communication counters.
///
/// Byte counts are *payload-type* bytes (`size_of::<T>()` per message,
/// element-counted for the all-to-all-v buffers) — a deterministic proxy
/// for wire traffic, since the thread-backed transport moves ownership
/// rather than serializing.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CommCounters {
    /// Point-to-point + collective-internal messages sent.
    pub sends: u64,
    /// Messages received.
    pub recvs: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Collective entries per kind (indexed by [`CollectiveKind`]).
    pub collectives: [u64; 7],
}

impl CommCounters {
    /// Record one message sent with `bytes` of payload.
    pub fn record_send(&mut self, bytes: u64) {
        self.sends += 1;
        self.bytes_sent += bytes;
    }

    /// Record one message received.
    pub fn record_recv(&mut self) {
        self.recvs += 1;
    }

    /// Record entry into a collective.
    pub fn record_collective(&mut self, kind: CollectiveKind) {
        self.collectives[kind as usize] += 1;
    }

    /// Calls of one collective kind.
    pub fn collective(&self, kind: CollectiveKind) -> u64 {
        self.collectives[kind as usize]
    }

    /// Total collective entries across kinds.
    pub fn total_collectives(&self) -> u64 {
        self.collectives.iter().sum()
    }

    /// Elementwise merge (e.g. across ranks).
    pub fn merge(&mut self, o: &CommCounters) {
        self.sends += o.sends;
        self.recvs += o.recvs;
        self.bytes_sent += o.bytes_sent;
        for (a, b) in self.collectives.iter_mut().zip(&o.collectives) {
            *a += b;
        }
    }
}

/// Per-rank tiered-I/O counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoCounters {
    /// Bytes written synchronously to the node-local tier (NVMe).
    pub nvme_bytes: u64,
    /// Bytes bled asynchronously to the PFS tier.
    pub pfs_bytes: u64,
    /// Files written to the local tier (checkpoints + science outputs).
    pub nvme_writes: u64,
    /// Files that completed the bleed to the PFS.
    pub files_bled: u64,
    /// Checkpoints pruned from the PFS window.
    pub files_pruned: u64,
    /// Bleed-backlog stalls taken on the blocking path.
    pub stalls: u64,
    /// Faults injected / observed (fault-tolerance harness).
    pub faults: u64,
}

impl IoCounters {
    /// Elementwise merge (e.g. across ranks).
    pub fn merge(&mut self, o: &IoCounters) {
        self.nvme_bytes += o.nvme_bytes;
        self.pfs_bytes += o.pfs_bytes;
        self.nvme_writes += o.nvme_writes;
        self.files_bled += o.files_bled;
        self.files_pruned += o.files_pruned;
        self.stalls += o.stalls;
        self.faults += o.faults;
    }
}

/// The fault-injection sites of the chaos harness (`hacc-fault`), in
/// report order. Each site names one class of injected failure threaded
/// through the real execution path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum FaultKind {
    /// A rank panics mid-step (fatal; recovered by supervisor rollback).
    RankPanic = 0,
    /// A point-to-point message is held back and delivered late.
    CommDelay = 1,
    /// A point-to-point message arrives twice (receiver deduplicates).
    CommDup = 2,
    /// A message arrives truncated (receiver drops it; sender retransmits).
    CommTrunc = 3,
    /// A checkpoint write is torn mid-file (detected by CRC on resume).
    CkptTorn = 4,
    /// A checkpoint lands with a corrupted CRC (detected on resume).
    CkptCrc = 5,
    /// A transient NVMe write error (retried with modeled backoff).
    NvmeErr = 6,
    /// A GPU kernel launch fails (relaunched; failed work discarded).
    GpuLaunch = 7,
}

/// Every fault kind, for iteration.
pub const FAULT_KINDS: [FaultKind; 8] = [
    FaultKind::RankPanic,
    FaultKind::CommDelay,
    FaultKind::CommDup,
    FaultKind::CommTrunc,
    FaultKind::CkptTorn,
    FaultKind::CkptCrc,
    FaultKind::NvmeErr,
    FaultKind::GpuLaunch,
];

impl FaultKind {
    /// Display name (also the row label in the golden report).
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::RankPanic => "rank_panic",
            FaultKind::CommDelay => "comm_delay",
            FaultKind::CommDup => "comm_dup",
            FaultKind::CommTrunc => "comm_trunc",
            FaultKind::CkptTorn => "ckpt_torn",
            FaultKind::CkptCrc => "ckpt_crc",
            FaultKind::NvmeErr => "nvme_err",
            FaultKind::GpuLaunch => "gpu_launch",
        }
    }

    /// True for faults the run survives in place (retry/dedup/late
    /// delivery); false for fatal faults that require a rollback to a
    /// valid checkpoint.
    pub fn is_transient(&self) -> bool {
        !matches!(
            self,
            FaultKind::RankPanic | FaultKind::CkptTorn | FaultKind::CkptCrc
        )
    }
}

/// Per-rank fault-injection counters: how many faults of each kind were
/// injected, and how many were recovered *in place* (retry, dedup, late
/// delivery). Fatal faults (`rank_panic`, `ckpt_torn`, `ckpt_crc`) are
/// recovered by supervisor rollback instead, which the report records as
/// `rollbacks` in its `[meta]` section — their in-place count stays 0.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Injections per kind (indexed by [`FaultKind`]).
    pub injected: [u64; 8],
    /// In-place recoveries per kind.
    pub recovered: [u64; 8],
}

impl FaultCounters {
    /// Record one injected fault.
    pub fn record_injected(&mut self, kind: FaultKind) {
        self.injected[kind as usize] += 1;
    }

    /// Record one in-place recovery.
    pub fn record_recovered(&mut self, kind: FaultKind) {
        self.recovered[kind as usize] += 1;
    }

    /// Injections of one kind.
    pub fn injected(&self, kind: FaultKind) -> u64 {
        self.injected[kind as usize]
    }

    /// In-place recoveries of one kind.
    pub fn recovered(&self, kind: FaultKind) -> u64 {
        self.recovered[kind as usize]
    }

    /// Total injections across kinds.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Elementwise merge (e.g. across ranks).
    pub fn merge(&mut self, o: &FaultCounters) {
        for (a, b) in self.injected.iter_mut().zip(&o.injected) {
            *a += b;
        }
        for (a, b) in self.recovered.iter_mut().zip(&o.recovered) {
            *a += b;
        }
    }
}

/// One per-kernel GPU profile row (launches/FLOPs/bytes via the
/// `hacc_gpusim::ProfileTable`), already merged across ranks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GpuKernelRow {
    /// Kernel name.
    pub name: String,
    /// Kernel launches.
    pub launches: u64,
    /// Useful FLOPs.
    pub flops: u64,
    /// Global-memory bytes.
    pub bytes: u64,
    /// Pair interactions evaluated.
    pub pairs: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comm_counters_accumulate_and_merge() {
        let mut a = CommCounters::default();
        a.record_send(100);
        a.record_send(28);
        a.record_recv();
        a.record_collective(CollectiveKind::AllReduce);
        a.record_collective(CollectiveKind::AllReduce);
        a.record_collective(CollectiveKind::Barrier);
        assert_eq!(a.sends, 2);
        assert_eq!(a.bytes_sent, 128);
        assert_eq!(a.collective(CollectiveKind::AllReduce), 2);
        assert_eq!(a.total_collectives(), 3);

        let mut b = CommCounters::default();
        b.record_collective(CollectiveKind::Barrier);
        b.record_send(2);
        b.merge(&a);
        assert_eq!(b.sends, 3);
        assert_eq!(b.collective(CollectiveKind::Barrier), 2);
    }

    #[test]
    fn collective_kind_names_are_distinct() {
        let names: std::collections::BTreeSet<&str> =
            COLLECTIVE_KINDS.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), COLLECTIVE_KINDS.len());
    }

    #[test]
    fn fault_kind_names_are_distinct() {
        let names: std::collections::BTreeSet<&str> =
            FAULT_KINDS.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), FAULT_KINDS.len());
    }

    #[test]
    fn fault_counters_accumulate_and_merge() {
        let mut a = FaultCounters::default();
        a.record_injected(FaultKind::CommDup);
        a.record_injected(FaultKind::CommDup);
        a.record_recovered(FaultKind::CommDup);
        a.record_injected(FaultKind::RankPanic);
        assert_eq!(a.injected(FaultKind::CommDup), 2);
        assert_eq!(a.recovered(FaultKind::CommDup), 1);
        assert_eq!(a.total_injected(), 3);

        let mut b = FaultCounters::default();
        b.record_injected(FaultKind::RankPanic);
        b.merge(&a);
        assert_eq!(b.injected(FaultKind::RankPanic), 2);
        assert_eq!(b.recovered(FaultKind::CommDup), 1);
    }

    #[test]
    fn fatal_faults_are_not_transient() {
        assert!(!FaultKind::RankPanic.is_transient());
        assert!(!FaultKind::CkptTorn.is_transient());
        assert!(!FaultKind::CkptCrc.is_transient());
        assert!(FaultKind::CommDelay.is_transient());
        assert!(FaultKind::NvmeErr.is_transient());
        assert!(FaultKind::GpuLaunch.is_transient());
    }

    #[test]
    fn io_counters_merge() {
        let mut a = IoCounters {
            nvme_bytes: 10,
            pfs_bytes: 8,
            nvme_writes: 1,
            ..Default::default()
        };
        let b = IoCounters {
            nvme_bytes: 5,
            faults: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.nvme_bytes, 15);
        assert_eq!(a.faults, 2);
        assert_eq!(a.nvme_writes, 1);
    }
}
